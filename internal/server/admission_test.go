package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"spatialsel/internal/faultfs"
	"spatialsel/internal/resilience"
	"spatialsel/internal/telemetry"
)

// postJSON posts body and returns the response with its body closed — these
// tests care about status codes and headers, not payloads.
func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func pairQuery() QueryRequest {
	return QueryRequest{Tables: []string{"qa", "qb"}, Predicates: [][2]string{{"qa", "qb"}}}
}

func TestAdmissionCostGateShedsDoomedQueries(t *testing.T) {
	s, ts := newTestServer(t, Config{Admission: true, RequestTimeout: 2 * time.Second})
	createTable(t, ts.URL, "qa", "uniform", 400, 1, false)
	createTable(t, ts.URL, "qb", "uniform", 400, 2, false)

	// Uncalibrated, the cost gate admits everything rather than guessing.
	if resp := postJSON(t, ts.URL+"/v1/query", pairQuery()); resp.StatusCode != http.StatusOK {
		t.Fatalf("uncalibrated query status = %d, want 200", resp.StatusCode)
	}
	waitCounter(t, s.Admission().Admitted, 1)

	// Price the model so one cost unit costs ~17 minutes: every query is now
	// predicted to blow the 2s deadline and must be shed at arrival.
	s.Admission().Calibrate(1e12)
	resp := postJSON(t, ts.URL+"/v1/query", pairQuery())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("doomed query status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want positive whole seconds", ra)
	}
	waitCounter(t, s.Admission().Shed, 1)
	if m := fetchMetrics(t, ts.URL); !strings.Contains(m, "sdbd_admission_shed_total 1") {
		t.Fatal("metrics missing sdbd_admission_shed_total 1")
	}

	// Un-calibrating re-opens the gate: the decision is driven purely by the
	// cost model, not sticky state.
	s.Admission().Calibrate(0)
	if resp := postJSON(t, ts.URL+"/v1/query", pairQuery()); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recalibration = %d, want 200", resp.StatusCode)
	}
}

func TestAdmissionConcurrencyLimitSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Admission: true, MaxInflight: 1})
	createTable(t, ts.URL, "qa", "uniform", 200, 1, false)
	createTable(t, ts.URL, "qb", "uniform", 200, 2, false)

	// Hold the single slot; the next query must be refused at the door.
	if !s.Admission().TryAcquire() {
		t.Fatal("could not take the only slot on an idle server")
	}
	resp := postJSON(t, ts.URL+"/v1/query", pairQuery())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query at limit = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	s.Admission().ReleaseShed()

	if resp := postJSON(t, ts.URL+"/v1/query", pairQuery()); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after slot freed = %d, want 200", resp.StatusCode)
	}
}

func TestAdmissionDowngradesToSerialUnderPressure(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Admission:       true,
		MaxInflight:     2,
		AdmissionTarget: time.Nanosecond, // everything is "expensive"
		EnableTelemetry: true,
		Telemetry:       telemetry.Options{SampleN: 1}, // retain every request
	})
	createTable(t, ts.URL, "qa", "uniform", 400, 1, false)
	createTable(t, ts.URL, "qb", "uniform", 400, 2, false)

	// Calibrated cheap: predicted cost clears the 30s deadline easily but
	// exceeds the 1ns target, and with limit 2 a single running query already
	// counts as pressure — so the gate downgrades instead of shedding.
	s.Admission().Calibrate(10)
	if resp := postJSON(t, ts.URL+"/v1/query", pairQuery()); resp.StatusCode != http.StatusOK {
		t.Fatalf("downgraded query status = %d, want 200", resp.StatusCode)
	}
	waitCounter(t, s.Admission().Degraded, 1)

	// The flight recorder's wide event shows the verdict and the forced
	// serial execution.
	deadline := time.Now().Add(2 * time.Second)
	for {
		evs := s.Telemetry().Flight().Query(telemetry.FlightQuery{Route: "query", Limit: 1})
		if len(evs) == 1 {
			if evs[0].Admission != telemetry.AdmissionDegraded || evs[0].Workers != 1 {
				t.Fatalf("event admission=%q workers=%d, want degraded/1", evs[0].Admission, evs[0].Workers)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query event never reached the flight recorder")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitCounter polls an admission counter until it reaches want — the slot is
// released in the handler's defer, which can run after the client already
// has the response.
func waitCounter(t *testing.T, get func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for get() != want {
		if time.Now().After(deadline) {
			t.Fatalf("counter = %d, want %d", get(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWALDegradedModeOverHTTP(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.Disk(), 7)
	s, ts := newTestServer(t, Config{
		WALDir:     t.TempDir(),
		WALFS:      inj,
		WALRetry:   resilience.RetryPolicy{Max: -1},
		WALBreaker: resilience.BreakerPolicy{Failures: 1, Cooldown: time.Millisecond, MaxCooldown: 4 * time.Millisecond},
	})
	createTable(t, ts.URL, "wt", "uniform", 300, 3, false)
	createTable(t, ts.URL, "wo", "uniform", 300, 4, false)

	ins := InsertRequest{Items: [][4]float64{{0.1, 0.1, 0.2, 0.2}}}
	if resp := postJSON(t, ts.URL+"/v1/tables/wt/insert", ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy insert = %d, want 200", resp.StatusCode)
	}

	// Persistent fsync failure: mutations answer 503 + Retry-After while the
	// table serves reads from its last durable snapshot.
	inj.Add(faultfs.Fault{Op: faultfs.OpSync})
	resp := postJSON(t, ts.URL+"/v1/tables/wt/insert", ins)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert on degraded table = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("degraded insert Retry-After = %q, want positive", ra)
	}
	if resp := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Left: "wt", Right: "wo"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate during degraded mode = %d, want 200", resp.StatusCode)
	}
	var info TableInfo
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/tables/wt", nil, &info); code != http.StatusOK || info.Items != 301 {
		t.Fatalf("read during degraded mode = %d items (status %d), want 301", info.Items, code)
	}
	if m := fetchMetrics(t, ts.URL); !strings.Contains(m, "sdbd_wal_degraded_tables 1") {
		t.Fatal("metrics missing sdbd_wal_degraded_tables 1")
	}
	if got := s.Ingest().DegradedTables(); len(got) != 1 || got[0] != "wt" {
		t.Fatalf("DegradedTables = %v, want [wt]", got)
	}

	// Fault clears: the breaker's probe re-arms writes.
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/v1/tables/wt/insert", ins)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("recovery insert = %d, want 503 until probe lands", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("table never recovered over HTTP after fault cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Ingest().DegradedTables(); len(got) != 0 {
		t.Fatalf("DegradedTables after recovery = %v, want none", got)
	}
}
