package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"spatialsel/internal/geom"
	"spatialsel/internal/ingest"
)

// ---- live mutations ----------------------------------------------------

// InsertRequest carries rectangles to insert, in the table's original
// coordinate space (the extent it was created with).
type InsertRequest struct {
	Items [][4]float64 `json:"items"`
}

// DeleteRequest carries item IDs to delete. IDs are the ones returned by
// insert responses (and, for preloaded tables, the 0-based positions of the
// original dataset).
type DeleteRequest struct {
	IDs []int `json:"ids"`
}

// BatchRequest combines inserts and deletes into one atomic batch.
type BatchRequest struct {
	Insert [][4]float64 `json:"insert,omitempty"`
	Delete []int        `json:"delete,omitempty"`
}

// MutateResponse reports a committed batch. Generation is the store
// generation whose snapshot contains the batch — estimate-cache entries
// keyed on earlier generations are stale from this point on.
type MutateResponse struct {
	Table      string `json:"table"`
	IDs        []int  `json:"ids,omitempty"`
	Inserted   int    `json:"inserted"`
	Deleted    int    `json:"deleted"`
	Seq        uint64 `json:"seq"`
	Generation uint64 `json:"generation"`
	Durable    bool   `json:"durable"`
}

// retryAfterSeconds renders a backoff for the Retry-After header: whole
// seconds, rounded up so sub-second backoffs don't advertise "0".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func rectsFromWire(items [][4]float64) []geom.Rect {
	rects := make([]geom.Rect, len(items))
	for i, r := range items {
		rects[i] = geom.NewRect(r[0], r[1], r[2], r[3])
	}
	return rects
}

// applyMutation funnels all three mutation endpoints through the ingest
// manager. The table must exist in the serving store; its mutation front is
// opened lazily on first use.
func (s *Server) applyMutation(w http.ResponseWriter, r *http.Request, m ingest.Mutation) {
	name := r.PathValue("name")
	if _, err := s.store.Snapshot().Catalog.Table(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	tab, err := s.ingest.Table(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	res, err := tab.Apply(m)
	if err != nil {
		// A degraded table is a server-side condition, not a bad request: the
		// client gets 503 with the breaker's probe backoff as Retry-After,
		// while reads keep serving the last durable snapshot.
		var derr *ingest.DegradedError
		if errors.As(err, &derr) {
			w.Header().Set("Retry-After", retryAfterSeconds(derr.RetryAfter))
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Table:      name,
		IDs:        res.IDs,
		Inserted:   len(m.Inserts),
		Deleted:    len(m.Deletes),
		Seq:        res.Seq,
		Generation: res.Gen,
		Durable:    tab.WALPath() != "",
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "items must be non-empty")
		return
	}
	s.applyMutation(w, r, ingest.Mutation{Inserts: rectsFromWire(req.Items)})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "ids must be non-empty")
		return
	}
	s.applyMutation(w, r, ingest.Mutation{Deletes: req.IDs})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		writeError(w, http.StatusBadRequest, "batch must contain inserts or deletes")
		return
	}
	s.applyMutation(w, r, ingest.Mutation{Inserts: rectsFromWire(req.Insert), Deletes: req.Delete})
}
