package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"spatialsel/internal/obs"
)

// TestQueryAnalyze drives /v1/query?analyze=1 on a two-table join and checks
// the EXPLAIN ANALYZE payload: a span tree with plan and execute phases, one
// operator span carrying rows / est_rows / rel_error, and the nested
// rtree.join span with its traversal counters.
func TestQueryAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{Level: 5})
	createTable(t, ts.URL, "roads", "polyline", 1500, 7, false)
	createTable(t, ts.URL, "streams", "polyline", 500, 8, false)

	var qr QueryResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/query?analyze=1", QueryRequest{
		Tables:     []string{"roads", "streams"},
		Predicates: [][2]string{{"roads", "streams"}},
	}, &qr)
	if code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if qr.Analyze == nil || qr.Analyze.Name != "query" {
		t.Fatalf("analyze payload missing or misnamed: %+v", qr.Analyze)
	}
	if qr.TraceID == "" {
		t.Fatal("analyze response should carry the trace ID")
	}

	byName := map[string]*obs.SpanReport{}
	for _, c := range qr.Analyze.Children {
		byName[c.Name] = c
	}
	if byName["plan"] == nil || byName["execute"] == nil {
		t.Fatalf("want plan and execute children, got %+v", qr.Analyze.Children)
	}
	if byName["plan"].Attrs["est_rows"].(float64) != qr.EstRows {
		t.Fatalf("plan span est_rows %v != response est_rows %v",
			byName["plan"].Attrs["est_rows"], qr.EstRows)
	}

	exec := byName["execute"]
	if len(exec.Children) != 1 {
		t.Fatalf("two-table join should have one operator span, got %+v", exec.Children)
	}
	join := exec.Children[0]
	if !strings.HasPrefix(join.Name, "join ") {
		t.Fatalf("operator span = %q, want join", join.Name)
	}
	if join.Attrs["rows"].(float64) != float64(qr.TotalRows) {
		t.Fatalf("join span rows = %v, response total = %d", join.Attrs["rows"], qr.TotalRows)
	}
	if _, ok := join.Attrs["rel_error"]; !ok {
		t.Fatalf("join span missing rel_error: %+v", join.Attrs)
	}
	if len(join.Children) != 1 || !strings.HasPrefix(join.Children[0].Name, "rtree.packed_join") {
		t.Fatalf("join span should nest rtree.packed_join, got %+v", join.Children)
	}
	rt := join.Children[0]
	if rt.Attrs["node_visits"].(float64) <= 0 || rt.Attrs["output_pairs"].(float64) != float64(qr.TotalRows) {
		t.Fatalf("rtree.packed_join counters: %+v (total rows %d)", rt.Attrs, qr.TotalRows)
	}

	if !strings.Contains(qr.AnalyzeText, "rtree.packed_join") || !strings.Contains(qr.AnalyzeText, "execute") {
		t.Fatalf("analyze_text should render the tree:\n%s", qr.AnalyzeText)
	}

	// Without the flag the payload stays lean.
	var plain QueryResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/query", QueryRequest{
		Tables:     []string{"roads", "streams"},
		Predicates: [][2]string{{"roads", "streams"}},
	}, &plain)
	if plain.Analyze != nil || plain.AnalyzeText != "" {
		t.Fatalf("analyze payload present without ?analyze=1: %+v", plain.Analyze)
	}
}

// TestMetricsIncludeEngineSeries: /metrics must merge the engine-level
// obs.Default registry — R-tree traversal counters, histogram estimator
// counters, executor row counters — with the server's request series, and the
// exposition must be deterministic between scrapes.
func TestMetricsIncludeEngineSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Level: 5})
	createTable(t, ts.URL, "a", "uniform", 800, 1, false)
	createTable(t, ts.URL, "b", "uniform", 800, 2, false)

	var est EstimateResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/estimate", EstimateRequest{Left: "a", Right: "b"}, &est)
	var qr QueryResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/query", QueryRequest{
		Tables:     []string{"a", "b"},
		Predicates: [][2]string{{"a", "b"}},
	}, &qr)

	metrics := fetchMetrics(t, ts.URL)
	for _, name := range []string{
		"rtree_packed_node_visits_total",
		"rtree_packed_joins_total",
		"sdb_exec_packed_joins_total",
		"sdb_exec_rows_total",
		"sdb_exec_queries_total",
	} {
		if metricValue(t, metrics, name) <= 0 {
			t.Errorf("engine metric %s missing or zero", name)
		}
	}
	if !strings.Contains(metrics, `histogram_estimates_total{technique="gh"}`) {
		t.Errorf("GH estimator counter missing:\n%s", metrics)
	}

	// Determinism: two scrapes with no traffic in between may differ only in
	// sampled values, never in ordering — compare the line order of a
	// value-stripped rendering.
	stripped := func(s string) []string {
		var names []string
		for _, line := range strings.Split(s, "\n") {
			if i := strings.LastIndexByte(line, ' '); i > 0 && !strings.HasPrefix(line, "#") {
				names = append(names, line[:i])
			}
		}
		return names
	}
	a, b := stripped(metrics), stripped(fetchMetrics(t, ts.URL))
	// The second scrape gains series (e.g. the GET /metrics route counter) but
	// every name from the first must appear in the same relative order.
	j := 0
	for _, name := range a {
		for j < len(b) && b[j] != name {
			j++
		}
		if j == len(b) {
			t.Fatalf("series %q absent or reordered in second scrape", name)
		}
	}
}

// TestDebugEndpointsGated: pprof and expvar must 404 by default and serve
// when enabled.
func TestDebugEndpointsGated(t *testing.T) {
	_, off := newTestServer(t, Config{Level: 4})
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(off.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s should 404 when disabled, got %d", path, resp.StatusCode)
		}
	}

	_, on := newTestServer(t, Config{Level: 4, EnablePprof: true, EnableExpvar: true})
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s should serve when enabled, got %d", path, resp.StatusCode)
		}
	}
}

// TestTraceIDHeader: every instrumented response carries X-Trace-Id, and a
// client-supplied ID is echoed back for cross-service correlation.
func TestTraceIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Level: 4})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if len(id) != 16 {
		t.Fatalf("generated trace ID %q, want 16 hex chars", id)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "deadbeefcafef00d")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "deadbeefcafef00d" {
		t.Fatalf("client trace ID not echoed: got %q", got)
	}
}

// TestRenderDeterministic is the focused unit check for the sorted-output
// satellite: interleaved registrations must render identically regardless of
// insertion order.
func TestRenderDeterministic(t *testing.T) {
	m1, m2 := NewMetrics(), NewMetrics()
	// Register the same series in opposite orders.
	m1.RecordRequest("POST /v1/query", 200, 0)
	m1.RecordRequest("GET /metrics", 200, 0)
	m2.RecordRequest("GET /metrics", 200, 0)
	m2.RecordRequest("POST /v1/query", 200, 0)

	strip := func(s string) string {
		var b bytes.Buffer
		for _, line := range strings.Split(s, "\n") {
			if i := strings.LastIndexByte(line, ' '); i > 0 && !strings.HasPrefix(line, "#") {
				b.WriteString(line[:i])
				b.WriteByte('\n')
			} else {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	// Both renders merge the shared obs.Default, which other tests mutate
	// concurrently in -count>1 runs; compare only series names, not values.
	a, b := strip(m1.Render()), strip(m2.Render())
	if a != b {
		t.Fatalf("render order depends on insertion order:\n--- m1:\n%s\n--- m2:\n%s", a, b)
	}
	if got := strip(m1.Render()); got != a {
		t.Fatalf("repeated render differs:\n%s\nvs\n%s", got, a)
	}
}
