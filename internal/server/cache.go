package server

import (
	"container/list"
	"sync"

	"spatialsel/internal/core"
)

// CacheKey identifies one cached estimate. Table generations are part of the
// key, so replacing a table silently invalidates every cached estimate that
// involved it: the new generation makes a fresh key and the stale entries
// age out through LRU eviction. Left/Right are stored in canonical (sorted)
// order by the cache's callers, since every estimator here is symmetric.
type CacheKey struct {
	Left, Right string
	GenL, GenR  uint64
	Method      string
	Level       int
}

// EstimateCache is a fixed-capacity LRU cache of selectivity estimates.
// Repeated estimates for an unchanged table pair are O(1) map hits instead
// of histogram scans or sample joins. Safe for concurrent use.
type EstimateCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[CacheKey]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key CacheKey
	val core.Estimate
}

// NewEstimateCache returns a cache holding at most capacity entries
// (minimum 1).
func NewEstimateCache(capacity int) *EstimateCache {
	if capacity < 1 {
		capacity = 1
	}
	return &EstimateCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[CacheKey]*list.Element, capacity),
	}
}

// Get returns the cached estimate for k, recording a hit or miss.
func (c *EstimateCache) Get(k CacheKey) (core.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return core.Estimate{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes an estimate, evicting the least recently used
// entry when over capacity.
func (c *EstimateCache) Put(k CacheKey, v core.Estimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *EstimateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the lifetime hit and miss counts.
func (c *EstimateCache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
