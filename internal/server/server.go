package server

import (
	"context"
	"expvar"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"spatialsel/internal/faultfs"
	"spatialsel/internal/ingest"
	"spatialsel/internal/obs"
	"spatialsel/internal/resilience"
	"spatialsel/internal/sdb"
	"spatialsel/internal/telemetry"
)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Level is the GH statistics level for every table (default
	// sdb.StatisticsLevel, the paper's recommended level 7).
	Level int
	// CacheSize bounds the estimator LRU cache (default 256 entries).
	CacheSize int
	// RequestTimeout cancels a request's context after this long; the
	// cancellation propagates into the join executor. 0 keeps the package
	// default of 30s; negative disables the timeout.
	RequestTimeout time.Duration
	// MaxResultRows caps how many rows one query response may carry
	// (default 10000); clients page through larger results with offset.
	MaxResultRows int
	// Workers is the default executor parallelism for requests that do not
	// set their own: 0 (auto) lets the engine size its pools from GOMAXPROCS
	// with serial fallbacks for small inputs; 1 forces serial execution;
	// larger values force that pool size. Per-request `workers` fields
	// override it.
	Workers int
	// Logger receives structured request logs (default: discard).
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and cost CPU, so they
	// are strictly opt-in (sdbd -pprof).
	EnablePprof bool
	// EnableExpvar mounts the expvar handler at /debug/vars. Off by
	// default, opt-in via sdbd -expvar.
	EnableExpvar bool
	// WALDir is where per-table write-ahead logs live (sdbd -wal-dir). Empty
	// disables durability: mutation endpoints still work, but mutated tables
	// do not survive a restart.
	WALDir string
	// Repack tunes the background re-pack policy for mutated tables; zero
	// values take the ingest package defaults.
	Repack ingest.RepackPolicy
	// Admission enables the estimate-driven admission gate on /v1/query: an
	// adaptive concurrency limit plus a cost gate that prices each query with
	// the calibrated GH-estimate cost model and sheds (503 + Retry-After) or
	// downgrades-to-serial work that cannot finish inside its deadline.
	Admission bool
	// MaxInflight caps the adaptive concurrency limit (0 = 4×GOMAXPROCS).
	MaxInflight int
	// AdmissionTarget is the latency the limiter steers admitted queries
	// toward. 0 uses the telemetry slow-query threshold when telemetry is
	// configured, else the resilience default (250ms).
	AdmissionTarget time.Duration
	// WALFS is the filesystem write-ahead logs live on; nil means the real
	// disk. Tests inject a faultfs.Injector here.
	WALFS faultfs.FS
	// WALRetry bounds WAL write/fsync retries; zero values take the
	// resilience defaults (4 retries, exponential backoff with jitter).
	WALRetry resilience.RetryPolicy
	// WALBreaker paces degraded-mode write probes; zero values take defaults.
	WALBreaker resilience.BreakerPolicy
	// WALFailStop restores the pre-resilience behavior: the first persistent
	// WAL failure poisons the table instead of flipping it into read-only
	// degraded mode (sdbd -degraded-read-only=false).
	WALFailStop bool
	// EnableTelemetry turns on the continuous-evidence layer: a background
	// metric scraper with ring-buffer history, a per-request flight recorder,
	// and the estimator-drift watchdog, queryable at /v1/debug/timeseries and
	// /v1/debug/requests. The query endpoints are mounted only when this is
	// set (same opt-in discipline as pprof). The caller still owns the scrape
	// loop: run Telemetry().Run in a goroutine (sdbd does).
	EnableTelemetry bool
	// Telemetry tunes the telemetry layer (scrape interval, ring sizes, slow
	// threshold, drift policy). The Snapshot and OnDrift fields are owned by
	// the server and overwritten. Ignored unless EnableTelemetry is set.
	Telemetry telemetry.Options
}

// Server is the HTTP estimation/join service. Create with New, mount with
// Handler.
type Server struct {
	store          *Store
	ingest         *ingest.Manager
	cache          *EstimateCache
	metrics        *Metrics
	admission      *resilience.Controller // nil when disabled
	telemetry      *telemetry.Telemetry   // nil when disabled
	logger         *slog.Logger
	requestTimeout time.Duration
	maxResultRows  int
	workers        int
	mux            *http.ServeMux
	routes         []string
	started        time.Time
}

// New builds a Server with an empty catalog.
func New(cfg Config) (*Server, error) {
	if cfg.Level == 0 {
		cfg.Level = sdb.StatisticsLevel
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	} else if cfg.RequestTimeout < 0 {
		cfg.RequestTimeout = 0
	}
	if cfg.MaxResultRows <= 0 {
		cfg.MaxResultRows = 10000
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	store, err := NewStore(cfg.Level)
	if err != nil {
		return nil, err
	}
	manager := ingest.NewManager(ingest.Options{
		Level: cfg.Level,
		Dir:   cfg.WALDir,
		Lookup: func(name string) (*sdb.Table, error) {
			return store.Snapshot().Catalog.Table(name)
		},
		Publish:  store.Publish,
		Repack:   cfg.Repack,
		FS:       cfg.WALFS,
		Retry:    cfg.WALRetry,
		Breaker:  cfg.WALBreaker,
		FailStop: cfg.WALFailStop,
	})
	s := &Server{
		store:          store,
		ingest:         manager,
		cache:          NewEstimateCache(cfg.CacheSize),
		metrics:        NewMetrics(),
		logger:         cfg.Logger,
		requestTimeout: cfg.RequestTimeout,
		maxResultRows:  cfg.MaxResultRows,
		workers:        cfg.Workers,
		mux:            http.NewServeMux(),
		started:        time.Now(),
	}
	s.metrics.registerSampled(s.cache, s.store)
	s.metrics.registerIngest(manager)
	if cfg.Admission {
		target := cfg.AdmissionTarget
		if target == 0 {
			target = cfg.Telemetry.SlowQuery
		}
		s.admission = resilience.NewController(resilience.AdmissionPolicy{
			MaxInflight: cfg.MaxInflight,
			Target:      target,
		})
		s.metrics.registerAdmission(s.admission)
	}
	if cfg.EnableTelemetry {
		// The scraper samples exactly what /metrics exposes (request
		// registry, the telemetry layer's own instruments, engine defaults),
		// so the time-series store's history lines up with any live scrape.
		topts := cfg.Telemetry
		topts.Snapshot = func() map[string]float64 {
			return obs.SnapshotMerged(s.metrics.reg, s.telemetry.Registry(), obs.Default)
		}
		topts.OnDrift = s.onDrift
		s.telemetry = telemetry.New(topts)
		s.metrics.merge(s.telemetry.Registry())
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("POST /v1/tables", s.handleCreateTable)
	s.route("GET /v1/tables", s.handleListTables)
	s.route("GET /v1/tables/{name}", s.handleGetTable)
	s.route("DELETE /v1/tables/{name}", s.handleDropTable)
	s.route("POST /v1/tables/{name}/insert", s.handleInsert)
	s.route("POST /v1/tables/{name}/delete", s.handleDelete)
	s.route("POST /v1/tables/{name}/batch", s.handleBatch)
	s.route("POST /v1/estimate", s.handleEstimate)
	s.route("POST /v1/explain", s.handleExplain)
	s.route("POST /v1/query", s.handleQuery)
	// Debug endpoints are mounted raw (no metrics/timeout middleware): a
	// 30s CPU profile must not be cut off by the request timeout, and
	// scrape noise should not pollute the route counters.
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if cfg.EnableExpvar {
		s.mux.Handle("GET /debug/vars", expvar.Handler())
	}
	// Telemetry query endpoints are gated like pprof (mounted only when the
	// subsystem is on) and mounted raw: querying history should not pollute
	// the route counters or the flight ring it is reading.
	if cfg.EnableTelemetry {
		s.mux.HandleFunc("GET /v1/debug/timeseries", s.handleDebugTimeseries)
		s.mux.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	}
	return s, nil
}

// onDrift is the watchdog's newly-crossed-pair callback: log the offending
// pair and hint the ingest re-packer that both tables' statistics have
// drifted past the threshold, so the next repack pass rebuilds them even if
// tree-shape degradation alone would not have fired.
func (s *Server) onDrift(p telemetry.Pair, p90 float64) {
	s.logger.Warn("estimator drift detected",
		"left", p.Left, "right", p.Right, "rel_error_p90", p90)
	s.ingest.HintRepack(p.Left)
	s.ingest.HintRepack(p.Right)
}

func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, s.instrument(pattern, h))
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the table store (tests and the daemon preload tables
// through it).
func (s *Server) Store() *Store { return s.store }

// Ingest exposes the live-ingest manager: the daemon recovers WALs through
// it at startup and runs its background re-pack loop.
func (s *Server) Ingest() *ingest.Manager { return s.ingest }

// Telemetry exposes the telemetry layer, nil when disabled. The daemon runs
// its scrape loop (Telemetry().Run is nil-safe); tests drive Tick directly.
func (s *Server) Telemetry() *telemetry.Telemetry { return s.telemetry }

// Admission exposes the query admission controller, nil when disabled.
// benchrun's overload scenario calibrates it; tests assert its counters.
func (s *Server) Admission() *resilience.Controller { return s.admission }

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully, letting in-flight requests finish within grace.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		// Bound what one connection can cost before a handler ever runs: 1MiB
		// of headers (the default, made explicit) and two idle minutes before
		// a kept-alive connection is reclaimed.
		MaxHeaderBytes: 1 << 20,
		IdleTimeout:    2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.logger.Info("shutting down", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}
