// Package sweep implements a sort-based plane-sweep rectangle-intersection
// join in the style of Preparata–Shamos. It is the library's exact
// ground-truth join: experiments compute true selectivities with it, and it
// doubles as the no-index baseline the paper's "Est. Time 1" scenario builds
// R-trees to beat.
//
// The algorithm sorts both inputs by MinX and sweeps a vertical line across
// the plane. When the line reaches a rectangle's left edge, the rectangle is
// checked against the other set's active rectangles (those whose x-range
// contains the line) for y-overlap. Expected time is O((n+m)·log(n+m) + k·s)
// where s is the average number of active rectangles.
package sweep

import (
	"sort"

	"spatialsel/internal/geom"
)

// Pair is one join result: indices into the two input slices.
type Pair struct {
	A, B int
}

// Join returns all intersecting pairs between as and bs (closed-rectangle
// semantics, consistent with geom.Rect.Intersects).
func Join(as, bs []geom.Rect) []Pair {
	var out []Pair
	JoinFunc(as, bs, func(a, b int) { out = append(out, Pair{A: a, B: b}) })
	return out
}

// Count returns the number of intersecting pairs without materializing them.
func Count(as, bs []geom.Rect) int {
	n := 0
	JoinFunc(as, bs, func(int, int) { n++ })
	return n
}

// JoinFunc streams each intersecting pair (index into as, index into bs) to
// emit, in ascending order of the pair's later MinX coordinate.
func JoinFunc(as, bs []geom.Rect, emit func(a, b int)) {
	if len(as) == 0 || len(bs) == 0 {
		return
	}
	ia := sortedIndex(as)
	ib := sortedIndex(bs)
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		if as[ia[i]].MinX <= bs[ib[j]].MinX {
			scan(as, bs, ia[i], ib, j, emit, false)
			i++
		} else {
			scan(bs, as, ib[j], ia, i, emit, true)
			j++
		}
	}
}

// sortedIndex returns the indices of rs ordered by ascending MinX.
func sortedIndex(rs []geom.Rect) []int {
	idx := make([]int, len(rs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return rs[idx[i]].MinX < rs[idx[j]].MinX })
	return idx
}

// scan checks pivot (from ps) against candidates cs[ci[start:]] whose MinX
// falls within the pivot's x-range, emitting y-overlapping pairs. When
// swapped, the emit argument order is reversed so pairs are always
// (a-index, b-index).
func scan(ps, cs []geom.Rect, pivot int, ci []int, start int, emit func(int, int), swapped bool) {
	p := ps[pivot]
	for k := start; k < len(ci) && cs[ci[k]].MinX <= p.MaxX; k++ {
		c := cs[ci[k]]
		if p.MinY <= c.MaxY && c.MinY <= p.MaxY {
			if swapped {
				emit(ci[k], pivot)
			} else {
				emit(pivot, ci[k])
			}
		}
	}
}

// Selectivity runs the exact join and returns the paper's selectivity
// metric: |result| / (|as| · |bs|). It returns 0 for empty inputs.
func Selectivity(as, bs []geom.Rect) float64 {
	if len(as) == 0 || len(bs) == 0 {
		return 0
	}
	return float64(Count(as, bs)) / (float64(len(as)) * float64(len(bs)))
}

// SelfCount returns the number of unordered intersecting pairs within rs,
// excluding self-pairs.
func SelfCount(rs []geom.Rect) int {
	n := 0
	JoinFunc(rs, rs, func(a, b int) {
		if a < b {
			n++
		}
	})
	return n
}
