package sweep

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spatialsel/internal/geom"
)

func randRects(n int, seed int64, size float64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		out[i] = geom.NewRect(x, y, x+rng.Float64()*size, y+rng.Float64()*size)
	}
	return out
}

func brute(as, bs []geom.Rect) []Pair {
	var out []Pair
	for i, a := range as {
		for j, b := range bs {
			if a.Intersects(b) {
				out = append(out, Pair{A: i, B: j})
			}
		}
	}
	return out
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	less := func(p []Pair) func(i, j int) bool {
		return func(i, j int) bool {
			if p[i].A != p[j].A {
				return p[i].A < p[j].A
			}
			return p[i].B < p[j].B
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJoinMatchesBrute(t *testing.T) {
	for _, tc := range []struct {
		name string
		na   int
		nb   int
		size float64
	}{
		{"sparse", 500, 400, 0.01},
		{"dense", 300, 300, 0.2},
		{"asymmetric", 1000, 50, 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			as := randRects(tc.na, 1, tc.size)
			bs := randRects(tc.nb, 2, tc.size)
			got := Join(as, bs)
			want := brute(as, bs)
			if !pairsEqual(got, want) {
				t.Fatalf("got %d pairs, want %d", len(got), len(want))
			}
			if c := Count(as, bs); c != len(want) {
				t.Fatalf("Count = %d, want %d", c, len(want))
			}
		})
	}
}

func TestJoinEmpty(t *testing.T) {
	rs := randRects(10, 3, 0.1)
	if got := Join(nil, rs); got != nil {
		t.Fatalf("Join(nil, rs) = %v", got)
	}
	if got := Join(rs, nil); got != nil {
		t.Fatalf("Join(rs, nil) = %v", got)
	}
	if got := Count(nil, nil); got != 0 {
		t.Fatalf("Count(nil, nil) = %d", got)
	}
}

func TestJoinTouchingRects(t *testing.T) {
	// Closed semantics: rectangles sharing only an edge are joined.
	as := []geom.Rect{geom.NewRect(0, 0, 1, 1)}
	bs := []geom.Rect{geom.NewRect(1, 0, 2, 1), geom.NewRect(1, 1, 2, 2), geom.NewRect(1.1, 0, 2, 1)}
	got := Join(as, bs)
	want := []Pair{{0, 0}, {0, 1}}
	if !pairsEqual(got, want) {
		t.Fatalf("touching join = %v, want %v", got, want)
	}
}

func TestJoinIdenticalInputs(t *testing.T) {
	rs := randRects(200, 4, 0.1)
	got := Join(rs, rs)
	want := brute(rs, rs)
	if !pairsEqual(got, want) {
		t.Fatalf("self join got %d, want %d", len(got), len(want))
	}
}

func TestSelfCount(t *testing.T) {
	rs := randRects(300, 5, 0.1)
	want := 0
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if rs[i].Intersects(rs[j]) {
				want++
			}
		}
	}
	if got := SelfCount(rs); got != want {
		t.Fatalf("SelfCount = %d, want %d", got, want)
	}
}

func TestSelectivity(t *testing.T) {
	as := []geom.Rect{geom.NewRect(0, 0, 1, 1)}
	bs := []geom.Rect{geom.NewRect(0.5, 0.5, 1, 1), geom.NewRect(2, 2, 3, 3)}
	if got := Selectivity(as, bs); got != 0.5 {
		t.Fatalf("Selectivity = %g, want 0.5", got)
	}
	if got := Selectivity(nil, bs); got != 0 {
		t.Fatalf("Selectivity(nil, bs) = %g", got)
	}
}

func TestPropSweepMatchesBruteClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		n := 20 + rng.Intn(150)
		mk := func() []geom.Rect {
			cx, cy := rng.Float64(), rng.Float64()
			out := make([]geom.Rect, n)
			for i := range out {
				x := cx + rng.NormFloat64()*0.15
				y := cy + rng.NormFloat64()*0.15
				out[i] = geom.NewRect(x, y, x+rng.Float64()*0.1, y+rng.Float64()*0.1)
			}
			return out
		}
		as, bs := mk(), mk()
		return pairsEqual(Join(as, bs), brute(as, bs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSweepJoin(b *testing.B) {
	as := randRects(20000, 7, 0.005)
	bs := randRects(20000, 8, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(as, bs)
	}
}
