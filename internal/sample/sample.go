// Package sample implements the paper's three sampling techniques for
// spatial-join selectivity estimation (§2):
//
//   - Regular Sampling (RS): every k-th item, k = ⌈N/n⌉.
//   - Random Sampling With Replacement (RSWR): n uniform draws.
//   - Sorted Sampling (SS): RS over the dataset sorted by the Hilbert values
//     of its items.
//
// Estimation joins the two samples — by default with an R-tree join, which
// the paper found superior to a direct plane sweep on the samples — and
// scales the observed count by the inverse sampling fractions: with samples
// of a% and b%, the estimated join size is R/(a%·b%).
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spatialsel/internal/core"
	"spatialsel/internal/dataset"
	"spatialsel/internal/geom"
	"spatialsel/internal/hilbert"
	"spatialsel/internal/obs"
	"spatialsel/internal/rtree"
	"spatialsel/internal/sweep"
)

// Engine-level sampling counters: how many items the estimators draw and how
// many sample-join hits their estimates observe before scaling.
var (
	mSampleBuilds = obs.Default.Counter("sample_builds_total",
		"Sampling summaries built.")
	mSampleDraws = obs.Default.Counter("sample_draws_total",
		"Items drawn into samples across builds.")
	mSampleEstimates = obs.Default.Counter("sample_estimates_total",
		"Sampling-based join estimates computed.")
	mSampleJoinHits = obs.Default.Counter("sample_join_hits_total",
		"Intersecting sample pairs observed during estimates.")
)

// Method selects how sample items are picked.
type Method int

const (
	// RS is regular (systematic) sampling.
	RS Method = iota
	// RSWR is random sampling with replacement.
	RSWR
	// SS is sorted (Hilbert-ordered systematic) sampling.
	SS
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case RS:
		return "RS"
	case RSWR:
		return "RSWR"
	case SS:
		return "SS"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// JoinStrategy selects how the two samples are joined during estimation.
type JoinStrategy int

const (
	// RTreeJoin bulk-loads an R-tree per sample at build time and runs the
	// synchronized-traversal join — the paper's choice.
	RTreeJoin JoinStrategy = iota
	// SweepJoin plane-sweeps the raw samples, skipping index construction.
	// Kept for the ablation comparing the two (paper §2 discussion).
	SweepJoin
)

// String implements fmt.Stringer.
func (s JoinStrategy) String() string {
	if s == SweepJoin {
		return "sweep"
	}
	return "rtree"
}

// Technique is a sampling-based estimator implementing core.Technique.
type Technique struct {
	method   Method
	fraction float64
	strategy JoinStrategy
	seed     int64
}

// Option configures a Technique.
type Option func(*Technique)

// WithStrategy selects the sample-join strategy (default RTreeJoin).
func WithStrategy(s JoinStrategy) Option {
	return func(t *Technique) { t.strategy = s }
}

// WithSeed sets the PRNG seed used by RSWR (default 1). RS and SS are
// deterministic regardless.
func WithSeed(seed int64) Option {
	return func(t *Technique) { t.seed = seed }
}

// New returns a sampling technique drawing the given fraction (0, 1] of each
// dataset with the given method.
func New(method Method, fraction float64, opts ...Option) (*Technique, error) {
	if method != RS && method != RSWR && method != SS {
		return nil, fmt.Errorf("sample: unknown method %d", int(method))
	}
	if !(fraction > 0 && fraction <= 1) {
		return nil, fmt.Errorf("sample: fraction %g outside (0,1]", fraction)
	}
	t := &Technique{method: method, fraction: fraction, seed: 1}
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(method Method, fraction float64, opts ...Option) *Technique {
	t, err := New(method, fraction, opts...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements core.Technique.
func (t *Technique) Name() string {
	return fmt.Sprintf("%s(%g%%)", t.method, t.fraction*100)
}

// Fraction returns the sampling fraction.
func (t *Technique) Fraction() float64 { return t.fraction }

// Summary is the per-dataset artifact of a sampling technique: the sample
// itself, its R-tree (under RTreeJoin), and the fraction actually achieved.
type Summary struct {
	name     string
	items    int // original dataset cardinality
	sample   []geom.Rect
	tree     *rtree.Tree // nil under SweepJoin
	achieved float64     // len(sample)/items
	owner    *Technique
}

// DatasetName implements core.Summary.
func (s *Summary) DatasetName() string { return s.name }

// ItemCount implements core.Summary.
func (s *Summary) ItemCount() int { return s.items }

// SampleSize returns the number of sampled items.
func (s *Summary) SampleSize() int { return len(s.sample) }

// SizeBytes implements core.Summary: 32 bytes per sampled rectangle plus the
// R-tree's estimated footprint.
func (s *Summary) SizeBytes() int64 {
	b := int64(len(s.sample)) * 32
	if s.tree != nil {
		b += s.tree.ComputeStats().Bytes
	}
	return b
}

// Build implements core.Technique: draw the sample and (under RTreeJoin)
// bulk-load its R-tree.
func (t *Technique) Build(d *dataset.Dataset) (core.Summary, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("sample: dataset %q is empty", d.Name)
	}
	smp := t.draw(d)
	mSampleBuilds.Inc()
	mSampleDraws.Add(uint64(len(smp)))
	s := &Summary{
		name:     d.Name,
		items:    d.Len(),
		sample:   smp,
		achieved: float64(len(smp)) / float64(d.Len()),
		owner:    t,
	}
	if t.strategy == RTreeJoin {
		tree, err := rtree.BulkLoadSTR(rtree.ItemsFromRects(smp))
		if err != nil {
			return nil, err
		}
		s.tree = tree
	}
	return s, nil
}

// draw picks the sample according to the configured method.
func (t *Technique) draw(d *dataset.Dataset) []geom.Rect {
	n := int(math.Round(t.fraction * float64(d.Len())))
	if n < 1 {
		n = 1
	}
	if n > d.Len() {
		n = d.Len()
	}
	switch t.method {
	case RSWR:
		rng := rand.New(rand.NewSource(t.seed))
		out := make([]geom.Rect, n)
		for i := range out {
			out[i] = d.Items[rng.Intn(d.Len())]
		}
		return out
	case SS:
		idx := hilbertOrder(d)
		return systematic(d.Items, idx, n)
	default: // RS
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = i
		}
		return systematic(d.Items, idx, n)
	}
}

// systematic takes every k-th item of items in the order given by idx,
// k = ⌈N/n⌉, then tops up from the unvisited prefix offsets if the stride
// undershoots the requested size.
func systematic(items []geom.Rect, idx []int, n int) []geom.Rect {
	k := (len(items) + n - 1) / n
	if k < 1 {
		k = 1
	}
	out := make([]geom.Rect, 0, n)
	for i := 0; i < len(idx) && len(out) < n; i += k {
		out = append(out, items[idx[i]])
	}
	for off := 1; len(out) < n && off < k; off++ {
		for i := off; i < len(idx) && len(out) < n; i += k {
			out = append(out, items[idx[i]])
		}
	}
	return out
}

// hilbertOrder returns dataset item indices sorted by Hilbert value.
func hilbertOrder(d *dataset.Dataset) []int {
	extent := d.Extent
	if extent.Area() <= 0 {
		extent = geom.UnitSquare
	}
	curve := hilbert.MustNew(hilbert.MaxOrder, extent)
	keys := make([]uint64, d.Len())
	for i, r := range d.Items {
		keys[i] = curve.RectIndex(r)
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })
	return idx
}

// Estimate implements core.Technique: join the samples and scale by the
// inverse achieved fractions.
func (t *Technique) Estimate(a, b core.Summary) (core.Estimate, error) {
	sa, ok := a.(*Summary)
	if !ok {
		return core.Estimate{}, core.ErrSummaryMismatch
	}
	sb, ok := b.(*Summary)
	if !ok {
		return core.Estimate{}, core.ErrSummaryMismatch
	}
	if (sa.tree == nil) != (t.strategy == SweepJoin) || (sb.tree == nil) != (t.strategy == SweepJoin) {
		return core.Estimate{}, core.ErrSummaryMismatch
	}
	var count int
	if t.strategy == RTreeJoin {
		count = rtree.JoinCount(sa.tree, sb.tree)
	} else {
		count = sweep.Count(sa.sample, sb.sample)
	}
	mSampleEstimates.Inc()
	mSampleJoinHits.Add(uint64(count))
	if sa.achieved == 0 || sb.achieved == 0 {
		return core.Estimate{}, fmt.Errorf("sample: zero achieved fraction")
	}
	pairs := float64(count) / (sa.achieved * sb.achieved)
	return core.NewEstimate(pairs, sa.items, sb.items), nil
}

// Full returns a pseudo-sampling technique with fraction 1 (the paper's
// "100" configurations, where one side uses the entire dataset).
func Full(method Method, opts ...Option) *Technique {
	return MustNew(method, 1, opts...)
}

// Asymmetric wraps two sampling techniques so the left and right datasets
// can be drawn at different fractions (the 0.1/100, 100/10 … combinations of
// Figure 6). It implements core.Technique; Build alternates is not needed —
// the caller builds each side with the corresponding technique via the
// BuildLeft/BuildRight helpers, and Estimate accepts summaries from either.
type Asymmetric struct {
	Left, Right *Technique
}

// NewAsymmetric pairs two sampling configurations sharing a method.
func NewAsymmetric(method Method, leftFrac, rightFrac float64, opts ...Option) (*Asymmetric, error) {
	l, err := New(method, leftFrac, opts...)
	if err != nil {
		return nil, err
	}
	r, err := New(method, rightFrac, opts...)
	if err != nil {
		return nil, err
	}
	return &Asymmetric{Left: l, Right: r}, nil
}

// Name implements core.Technique.
func (a *Asymmetric) Name() string {
	return fmt.Sprintf("%s(%g%%/%g%%)", a.Left.method, a.Left.fraction*100, a.Right.fraction*100)
}

// Build implements core.Technique by drawing with the left configuration;
// use BuildRight for the right dataset.
func (a *Asymmetric) Build(d *dataset.Dataset) (core.Summary, error) { return a.Left.Build(d) }

// BuildRight draws the right-hand dataset at the right fraction.
func (a *Asymmetric) BuildRight(d *dataset.Dataset) (core.Summary, error) { return a.Right.Build(d) }

// Estimate implements core.Technique. The summaries carry their achieved
// fractions, so the left technique's Estimate handles the scaling for any
// fraction combination.
func (a *Asymmetric) Estimate(sa, sb core.Summary) (core.Estimate, error) {
	return a.Left.Estimate(sa, sb)
}
