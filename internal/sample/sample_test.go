package sample

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"spatialsel/internal/core"
	"spatialsel/internal/datagen"
	"spatialsel/internal/dataset"
	"spatialsel/internal/geom"
)

func TestNewValidation(t *testing.T) {
	for _, frac := range []float64{0, -0.1, 1.1} {
		if _, err := New(RS, frac); err == nil {
			t.Errorf("fraction %g accepted", frac)
		}
	}
	if _, err := New(Method(99), 0.5); err == nil {
		t.Error("unknown method accepted")
	}
	tech, err := New(RSWR, 0.1, WithSeed(7), WithStrategy(SweepJoin))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if tech.seed != 7 || tech.strategy != SweepJoin {
		t.Fatalf("options not applied: %+v", tech)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(RS, 0)
}

func TestNames(t *testing.T) {
	if got := MustNew(RS, 0.1).Name(); got != "RS(10%)" {
		t.Errorf("Name = %q", got)
	}
	if got := MustNew(RSWR, 0.001).Name(); got != "RSWR(0.1%)" {
		t.Errorf("Name = %q", got)
	}
	if got := Full(SS).Name(); got != "SS(100%)" {
		t.Errorf("Name = %q", got)
	}
	if got := Method(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown method String = %q", got)
	}
	if RTreeJoin.String() != "rtree" || SweepJoin.String() != "sweep" {
		t.Error("JoinStrategy strings wrong")
	}
}

func TestSampleSizes(t *testing.T) {
	d := datagen.Uniform("d", 1000, 0.01, 1)
	for _, m := range []Method{RS, RSWR, SS} {
		for _, frac := range []float64{0.001, 0.01, 0.1, 0.5, 1} {
			tech := MustNew(m, frac)
			s, err := tech.Build(d)
			if err != nil {
				t.Fatalf("%v(%g): %v", m, frac, err)
			}
			smp := s.(*Summary)
			want := int(math.Round(frac * 1000))
			if want < 1 {
				want = 1
			}
			if smp.SampleSize() != want {
				t.Errorf("%v(%g): sample size %d, want %d", m, frac, smp.SampleSize(), want)
			}
			if smp.ItemCount() != 1000 {
				t.Errorf("%v(%g): ItemCount %d", m, frac, smp.ItemCount())
			}
			if smp.DatasetName() != "d" {
				t.Errorf("DatasetName = %q", smp.DatasetName())
			}
			if smp.SizeBytes() <= 0 {
				t.Errorf("SizeBytes = %d", smp.SizeBytes())
			}
		}
	}
}

func TestBuildEmptyDataset(t *testing.T) {
	d := dataset.New("e", geom.UnitSquare, nil)
	if _, err := MustNew(RS, 0.1).Build(d); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestRSDeterministicStride(t *testing.T) {
	items := make([]geom.Rect, 10)
	for i := range items {
		x := float64(i) / 10
		items[i] = geom.NewRect(x, 0, x+0.05, 0.05)
	}
	d := dataset.New("d", geom.UnitSquare, items)
	s, err := MustNew(RS, 0.3).Build(d)
	if err != nil {
		t.Fatal(err)
	}
	smp := s.(*Summary)
	// n=3, k=ceil(10/3)=4 → items 0,4,8.
	if smp.SampleSize() != 3 {
		t.Fatalf("size = %d", smp.SampleSize())
	}
	for i, wantIdx := range []int{0, 4, 8} {
		if smp.sample[i] != items[wantIdx] {
			t.Errorf("sample[%d] = %v, want item %d", i, smp.sample[i], wantIdx)
		}
	}
}

func TestSSOrdersByHilbert(t *testing.T) {
	// SS over a fraction-1 sample returns all items; with a small fraction it
	// must pick items spread across space, unlike RS over an adversarial
	// ordering. Construct a dataset ordered so plain RS picks only the left
	// half, and verify SS picks from both halves.
	var items []geom.Rect
	for i := 0; i < 50; i++ { // left cluster first
		x := 0.1 + float64(i)*0.001
		items = append(items, geom.NewRect(x, 0.5, x+0.0005, 0.5005))
	}
	for i := 0; i < 50; i++ { // right cluster second
		x := 0.9 + float64(i)*0.001
		items = append(items, geom.NewRect(x, 0.5, x+0.0005, 0.5005))
	}
	d := dataset.New("d", geom.UnitSquare, items)
	s, err := MustNew(SS, 0.1).Build(d)
	if err != nil {
		t.Fatal(err)
	}
	left, right := 0, 0
	for _, r := range s.(*Summary).sample {
		if r.MinX < 0.5 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Fatalf("SS sample not spatially balanced: left=%d right=%d", left, right)
	}
}

func TestRSWRSeedControl(t *testing.T) {
	d := datagen.Uniform("d", 500, 0.01, 2)
	s1, _ := MustNew(RSWR, 0.1, WithSeed(1)).Build(d)
	s2, _ := MustNew(RSWR, 0.1, WithSeed(1)).Build(d)
	s3, _ := MustNew(RSWR, 0.1, WithSeed(2)).Build(d)
	a, b, c := s1.(*Summary).sample, s2.(*Summary).sample, s3.(*Summary).sample
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different samples")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds, identical samples")
	}
}

func TestFullSampleEstimateIsExact(t *testing.T) {
	// With fraction 1 on both sides the estimate must equal the true
	// selectivity exactly.
	a := datagen.Uniform("a", 400, 0.05, 3)
	b := datagen.Uniform("b", 300, 0.05, 4)
	truth := core.ComputeGroundTruth(a, b)
	for _, strat := range []JoinStrategy{RTreeJoin, SweepJoin} {
		tech := Full(RS, WithStrategy(strat))
		res, err := core.Run(tech, a, b, truth)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if math.Abs(res.Estimate.Selectivity-truth.Selectivity) > 1e-12 {
			t.Fatalf("%v: full-sample selectivity %g != truth %g",
				strat, res.Estimate.Selectivity, truth.Selectivity)
		}
		if res.ErrorPct > 1e-9 {
			t.Fatalf("%v: ErrorPct = %g", strat, res.ErrorPct)
		}
	}
}

func TestSamplingAccuracyOnUniformData(t *testing.T) {
	// A 10% sample of uniform data should land within a loose error band.
	a := datagen.Uniform("a", 5000, 0.02, 5)
	b := datagen.Uniform("b", 5000, 0.02, 6)
	truth := core.ComputeGroundTruth(a, b)
	if truth.PairCount == 0 {
		t.Fatal("test setup: empty join")
	}
	for _, m := range []Method{RS, RSWR, SS} {
		res, err := core.Run(MustNew(m, 0.1), a, b, truth)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.ErrorPct > 35 {
			t.Errorf("%v: error %.1f%% too high for uniform data", m, res.ErrorPct)
		}
	}
}

func TestEstimateRejectsForeignSummaries(t *testing.T) {
	tech := MustNew(RS, 0.1)
	if _, err := tech.Estimate(fakeSummary{}, fakeSummary{}); err != core.ErrSummaryMismatch {
		t.Fatalf("foreign summary err = %v", err)
	}
	// Strategy mismatch: summary built without a tree fed to an R-tree
	// technique.
	d := datagen.Uniform("d", 100, 0.05, 7)
	sweepSummary, _ := MustNew(RS, 0.1, WithStrategy(SweepJoin)).Build(d)
	if _, err := tech.Estimate(sweepSummary, sweepSummary); err != core.ErrSummaryMismatch {
		t.Fatalf("strategy mismatch err = %v", err)
	}
}

type fakeSummary struct{}

func (fakeSummary) DatasetName() string { return "f" }
func (fakeSummary) ItemCount() int      { return 1 }
func (fakeSummary) SizeBytes() int64    { return 0 }

func TestAsymmetric(t *testing.T) {
	asym, err := NewAsymmetric(RSWR, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := asym.Name(); got != "RSWR(10%/100%)" {
		t.Errorf("Name = %q", got)
	}
	a := datagen.Uniform("a", 2000, 0.02, 8)
	b := datagen.Uniform("b", 2000, 0.02, 9)
	truth := core.ComputeGroundTruth(a, b)
	sa, err := asym.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := asym.BuildRight(b)
	if err != nil {
		t.Fatal(err)
	}
	if sb.(*Summary).SampleSize() != 2000 {
		t.Fatalf("right side not full: %d", sb.(*Summary).SampleSize())
	}
	est, err := asym.Estimate(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkBand(est.Selectivity, truth.Selectivity, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := NewAsymmetric(RS, 0, 1); err == nil {
		t.Error("bad left fraction accepted")
	}
	if _, err := NewAsymmetric(RS, 1, 2); err == nil {
		t.Error("bad right fraction accepted")
	}
}

func checkBand(got, want, tol float64) error {
	if want == 0 {
		return nil
	}
	if rel := math.Abs(got-want) / want; rel > tol {
		return fmt.Errorf("estimate %g vs truth %g (rel %.2f)", got, want, rel)
	}
	return nil
}

func TestFractionAccessor(t *testing.T) {
	if got := MustNew(RS, 0.25).Fraction(); got != 0.25 {
		t.Fatalf("Fraction = %g", got)
	}
}
