package geom

// This file implements the geometric observation the Geometric Histogram is
// built on (paper §3.2, Figure 2): whenever two MBRs intersect, their
// intersection is a rectangle with exactly four corners ("intersection
// points"). Each intersection point arises from one of two situations:
//
//	(a) a corner point of one MBR falls inside the other MBR, or
//	(b) a vertical edge of one MBR crosses a horizontal edge of the other.
//
// For rectangles in general position (no coinciding edge coordinates),
//
//	CornersInside(a,b) + CornersInside(b,a) + Crossings(a,b) + Crossings(b,a) = 4
//
// whenever a and b properly intersect, and = 0 when they are disjoint.
// Dividing the total count of intersection points between two datasets by
// four therefore yields the join size.

// CornersInside returns the number of corner points of a that lie strictly
// inside b. Strict containment is used so that the general-position identity
// above holds; boundary coincidences are measure-zero for the continuous data
// distributions the estimators assume.
func CornersInside(a, b Rect) int {
	n := 0
	for _, p := range a.Corners() {
		if b.ContainsPointOpen(p) {
			n++
		}
	}
	return n
}

// Crossings returns the number of points at which a vertical edge of a
// strictly crosses a horizontal edge of b. Each of a's two vertical edges is
// the segment x ∈ {a.MinX, a.MaxX}, y ∈ [a.MinY, a.MaxY]; each of b's two
// horizontal edges is y ∈ {b.MinY, b.MaxY}, x ∈ [b.MinX, b.MaxX]. A strict
// crossing requires the vertical line's x to lie strictly inside b's x-range
// and the horizontal line's y to lie strictly inside a's y-range.
func Crossings(a, b Rect) int {
	n := 0
	for _, x := range [2]float64{a.MinX, a.MaxX} {
		if !(b.MinX < x && x < b.MaxX) {
			continue
		}
		for _, y := range [2]float64{b.MinY, b.MaxY} {
			if a.MinY < y && y < a.MaxY {
				n++
			}
		}
	}
	return n
}

// IntersectionPoints returns the total number of intersection points between
// a and b: corners of either rectangle inside the other plus edge crossings
// in both orientations. For properly intersecting rectangles in general
// position this is exactly 4; for disjoint rectangles it is 0.
func IntersectionPoints(a, b Rect) int {
	return CornersInside(a, b) + CornersInside(b, a) + Crossings(a, b) + Crossings(b, a)
}

// IntersectionCase identifies one of the twelve qualitative configurations of
// two properly intersecting rectangles shown in Figure 2 of the paper, plus
// sentinel values for disjoint and degenerate (non-general-position) pairs.
type IntersectionCase int

// The twelve Figure-2 cases, grouped by signature. Cases 1–4 are the four
// corner-overlap orientations (one corner of each rectangle inside the
// other); cases 5–6 are the two "plus-sign" crossing orientations (no corners
// inside, four edge crossings); cases 7–10 are the four pass-through
// orientations (two corners of one rectangle inside the other); cases 11–12
// are containment in either direction (four corners inside).
const (
	CaseDisjoint   IntersectionCase = 0
	CaseCornerNE   IntersectionCase = 1 // a's top-right corner in b
	CaseCornerNW   IntersectionCase = 2 // a's top-left corner in b
	CaseCornerSW   IntersectionCase = 3 // a's bottom-left corner in b
	CaseCornerSE   IntersectionCase = 4 // a's bottom-right corner in b
	CaseCrossAVert IntersectionCase = 5 // a is the vertical bar of the plus
	CaseCrossAHorz IntersectionCase = 6 // a is the horizontal bar of the plus
	CaseAEnterLeft IntersectionCase = 7 // a pokes into b from the left
	CaseAEnterRght IntersectionCase = 8 // a pokes into b from the right
	CaseAEnterBot  IntersectionCase = 9 // a pokes into b from below
	CaseAEnterTop  IntersectionCase = 10
	CaseAInsideB   IntersectionCase = 11
	CaseBInsideA   IntersectionCase = 12
	// CaseDegenerate marks pairs that intersect but share an edge coordinate,
	// so they do not match any general-position case.
	CaseDegenerate IntersectionCase = -1
)

// String implements fmt.Stringer.
func (c IntersectionCase) String() string {
	switch c {
	case CaseDisjoint:
		return "disjoint"
	case CaseCornerNE, CaseCornerNW, CaseCornerSW, CaseCornerSE:
		return "corner-overlap"
	case CaseCrossAVert, CaseCrossAHorz:
		return "cross"
	case CaseAEnterLeft, CaseAEnterRght, CaseAEnterBot, CaseAEnterTop:
		return "pass-through"
	case CaseAInsideB:
		return "a-inside-b"
	case CaseBInsideA:
		return "b-inside-a"
	case CaseDegenerate:
		return "degenerate"
	}
	return "unknown"
}

// Classify determines which Figure-2 configuration the pair (a, b) is in.
func Classify(a, b Rect) IntersectionCase {
	if !a.Intersects(b) {
		return CaseDisjoint
	}
	ain := CornersInside(a, b)
	bin := CornersInside(b, a)
	cross := Crossings(a, b) + Crossings(b, a)
	switch {
	case ain == 4 && bin == 0 && cross == 0:
		return CaseAInsideB
	case bin == 4 && ain == 0 && cross == 0:
		return CaseBInsideA
	case ain == 0 && bin == 0 && cross == 4:
		// The vertical bar of the plus is the rectangle whose x-range is
		// inside the other's.
		if b.MinX < a.MinX && a.MaxX < b.MaxX {
			return CaseCrossAVert
		}
		return CaseCrossAHorz
	case ain == 2 && bin == 0 && cross == 2:
		switch {
		case a.MinX < b.MinX: // a extends past b's left edge
			return CaseAEnterLeft
		case a.MaxX > b.MaxX:
			return CaseAEnterRght
		case a.MinY < b.MinY:
			return CaseAEnterBot
		default:
			return CaseAEnterTop
		}
	case ain == 0 && bin == 2 && cross == 2:
		// Symmetric pass-through: report from a's perspective by flipping.
		switch Classify(b, a) {
		case CaseAEnterLeft:
			return CaseAEnterRght
		case CaseAEnterRght:
			return CaseAEnterLeft
		case CaseAEnterBot:
			return CaseAEnterTop
		case CaseAEnterTop:
			return CaseAEnterBot
		}
		return CaseDegenerate
	case ain == 1 && bin == 1 && cross == 2:
		// Identify which corner of a is inside b.
		corners := a.Corners()
		switch {
		case b.ContainsPointOpen(corners[2]):
			return CaseCornerNE
		case b.ContainsPointOpen(corners[3]):
			return CaseCornerNW
		case b.ContainsPointOpen(corners[0]):
			return CaseCornerSW
		default:
			return CaseCornerSE
		}
	}
	return CaseDegenerate
}
