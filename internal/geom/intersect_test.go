package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The canonical Figure-2 configurations. b is fixed; a varies.
var figure2B = NewRect(4, 4, 8, 8)

var figure2Cases = []struct {
	name string
	a    Rect
	want IntersectionCase
	// expected counts (cornersAinB, cornersBinA, crossings total)
	ain, bin, cross int
}{
	{"corner NE", NewRect(2, 2, 5, 5), CaseCornerNE, 1, 1, 2},
	{"corner NW", NewRect(7, 2, 10, 5), CaseCornerNW, 1, 1, 2},
	{"corner SW", NewRect(7, 7, 10, 10), CaseCornerSW, 1, 1, 2},
	{"corner SE", NewRect(2, 7, 5, 10), CaseCornerSE, 1, 1, 2},
	{"cross a vertical", NewRect(5, 2, 7, 10), CaseCrossAVert, 0, 0, 4},
	{"cross a horizontal", NewRect(2, 5, 10, 7), CaseCrossAHorz, 0, 0, 4},
	{"a enters from left", NewRect(2, 5, 6, 7), CaseAEnterLeft, 2, 0, 2},
	{"a enters from right", NewRect(6, 5, 10, 7), CaseAEnterRght, 2, 0, 2},
	{"a enters from below", NewRect(5, 2, 7, 6), CaseAEnterBot, 2, 0, 2},
	{"a enters from above", NewRect(5, 6, 7, 10), CaseAEnterTop, 2, 0, 2},
	{"a inside b", NewRect(5, 5, 7, 7), CaseAInsideB, 4, 0, 0},
	{"b inside a", NewRect(2, 2, 10, 10), CaseBInsideA, 0, 4, 0},
}

func TestFigure2Taxonomy(t *testing.T) {
	for _, tt := range figure2Cases {
		t.Run(tt.name, func(t *testing.T) {
			if got := CornersInside(tt.a, figure2B); got != tt.ain {
				t.Errorf("CornersInside(a,b) = %d, want %d", got, tt.ain)
			}
			if got := CornersInside(figure2B, tt.a); got != tt.bin {
				t.Errorf("CornersInside(b,a) = %d, want %d", got, tt.bin)
			}
			if got := Crossings(tt.a, figure2B) + Crossings(figure2B, tt.a); got != tt.cross {
				t.Errorf("total crossings = %d, want %d", got, tt.cross)
			}
			if got := IntersectionPoints(tt.a, figure2B); got != 4 {
				t.Errorf("IntersectionPoints = %d, want 4", got)
			}
			if got := Classify(tt.a, figure2B); got != tt.want {
				t.Errorf("Classify = %v (%d), want %v (%d)", got, got, tt.want, tt.want)
			}
		})
	}
}

func TestFigure2SymmetricPassThrough(t *testing.T) {
	// When b pokes into a, classification is still reported from a's view.
	a := NewRect(4, 4, 8, 8)
	b := NewRect(2, 5, 6, 7) // b enters a from the left → a "enters" b from the right
	if got := Classify(a, b); got != CaseAEnterRght {
		t.Fatalf("Classify = %v, want CaseAEnterRght", got)
	}
}

func TestDisjointAndDegenerate(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	if got := Classify(a, NewRect(2, 2, 3, 3)); got != CaseDisjoint {
		t.Errorf("disjoint: Classify = %v", got)
	}
	if got := IntersectionPoints(a, NewRect(2, 2, 3, 3)); got != 0 {
		t.Errorf("disjoint: IntersectionPoints = %d, want 0", got)
	}
	// Sharing an edge is degenerate (measure zero in continuous data).
	if got := Classify(a, NewRect(1, 0, 2, 1)); got != CaseDegenerate {
		t.Errorf("edge-sharing: Classify = %v, want degenerate", got)
	}
	// Identical rectangles are also degenerate.
	if got := Classify(a, a); got != CaseDegenerate {
		t.Errorf("identical: Classify = %v, want degenerate", got)
	}
}

func TestCaseStrings(t *testing.T) {
	tests := map[IntersectionCase]string{
		CaseDisjoint:         "disjoint",
		CaseCornerNE:         "corner-overlap",
		CaseCrossAVert:       "cross",
		CaseAEnterTop:        "pass-through",
		CaseAInsideB:         "a-inside-b",
		CaseBInsideA:         "b-inside-a",
		CaseDegenerate:       "degenerate",
		IntersectionCase(99): "unknown",
	}
	for c, want := range tests {
		if got := c.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", c, got, want)
		}
	}
}

// generalPositionPair produces two rectangles with all eight edge
// coordinates distinct, guaranteeing general position.
func generalPositionPair(rng *rand.Rand) (Rect, Rect) {
	for {
		coords := map[float64]bool{}
		vals := make([]float64, 8)
		ok := true
		for i := range vals {
			v := rng.Float64()
			if coords[v] {
				ok = false
				break
			}
			coords[v] = true
			vals[i] = v
		}
		if !ok {
			continue
		}
		return NewRect(vals[0], vals[1], vals[2], vals[3]),
			NewRect(vals[4], vals[5], vals[6], vals[7])
	}
}

// TestPropFourIntersectionPoints verifies the core identity of §3.2: every
// properly intersecting pair in general position has exactly four
// intersection points, and every disjoint pair has zero.
func TestPropFourIntersectionPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b := generalPositionPair(rng)
		n := IntersectionPoints(a, b)
		if a.IntersectsOpen(b) {
			return n == 4
		}
		return n == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestPropClassifyTotal verifies Classify assigns every general-position
// intersecting pair one of the twelve cases (never degenerate), and that the
// case signature is consistent with the counting functions.
func TestPropClassifyTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func() bool {
		a, b := generalPositionPair(rng)
		c := Classify(a, b)
		if !a.IntersectsOpen(b) {
			// Touching is impossible in general position, so non-overlap
			// means disjoint.
			return c == CaseDisjoint
		}
		return c >= CaseCornerNE && c <= CaseBInsideA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestPropIntersectionPointsSymmetric verifies the count is symmetric in its
// arguments.
func TestPropIntersectionPointsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	f := func() bool {
		a, b := generalPositionPair(rng)
		return IntersectionPoints(a, b) == IntersectionPoints(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestPropCornersMatchIntersectionCorners cross-checks the corner count
// against a direct computation on the intersection rectangle: each corner of
// the intersection of two open-intersecting rectangles is either a corner of
// a inside b, a corner of b inside a, or an edge crossing.
func TestPropCornersMatchIntersectionCorners(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	f := func() bool {
		a, b := generalPositionPair(rng)
		if !a.IntersectsOpen(b) {
			return true
		}
		inter, ok := a.Intersection(b)
		if !ok || inter.Area() <= 0 {
			return false
		}
		// Each of the 4 corners of inter must be accounted for exactly once.
		accounted := 0
		for _, p := range inter.Corners() {
			isCornerA := false
			for _, q := range a.Corners() {
				if p == q {
					isCornerA = true
				}
			}
			isCornerB := false
			for _, q := range b.Corners() {
				if p == q {
					isCornerB = true
				}
			}
			if isCornerA || isCornerB {
				accounted++
			} else {
				// Must be an edge crossing: p lies on a vertical edge of one
				// rect and a horizontal edge of the other.
				onVertA := (p.X == a.MinX || p.X == a.MaxX)
				onVertB := (p.X == b.MinX || p.X == b.MaxX)
				onHorzA := (p.Y == a.MinY || p.Y == a.MaxY)
				onHorzB := (p.Y == b.MinY || p.Y == b.MaxY)
				if (onVertA && onHorzB) || (onVertB && onHorzA) {
					accounted++
				}
			}
		}
		return accounted == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
