package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(3, 4, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}
	if r != want {
		t.Fatalf("NewRect(3,4,1,2) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect reported invalid: %v", r)
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Point{1, 5}, Point{3, 2}, Point{2, 9})
	want := Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 9}
	if r != want {
		t.Fatalf("RectFromPoints = %v, want %v", r, want)
	}
}

func TestRectFromPointsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RectFromPoints() did not panic on empty input")
		}
	}()
	RectFromPoints()
}

func TestValid(t *testing.T) {
	tests := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, true},
		{Rect{}, true}, // degenerate point at origin
		{Rect{1, 0, 0, 1}, false},
		{Rect{0, 1, 1, 0}, false},
		{Rect{math.NaN(), 0, 1, 1}, false},
		{Rect{0, 0, math.Inf(1), 1}, false},
	}
	for _, tt := range tests {
		if got := tt.r.Valid(); got != tt.want {
			t.Errorf("%v.Valid() = %v, want %v", tt.r, got, tt.want)
		}
	}
}

func TestBasicMeasures(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 6}
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %g, want 3", got)
	}
	if got := r.Height(); got != 4 {
		t.Errorf("Height = %g, want 4", got)
	}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %g, want 12", got)
	}
	if got := r.Perimeter(); got != 14 {
		t.Errorf("Perimeter = %g, want 14", got)
	}
	if got := r.Center(); got != (Point{2.5, 4}) {
		t.Errorf("Center = %v, want (2.5,4)", got)
	}
}

func TestIntersects(t *testing.T) {
	base := NewRect(0, 0, 2, 2)
	tests := []struct {
		name   string
		other  Rect
		closed bool
		open   bool
	}{
		{"overlapping", NewRect(1, 1, 3, 3), true, true},
		{"touching edge", NewRect(2, 0, 4, 2), true, false},
		{"touching corner", NewRect(2, 2, 3, 3), true, false},
		{"disjoint", NewRect(3, 3, 4, 4), false, false},
		{"contained", NewRect(0.5, 0.5, 1.5, 1.5), true, true},
		{"identical", base, true, true},
	}
	for _, tt := range tests {
		if got := base.Intersects(tt.other); got != tt.closed {
			t.Errorf("%s: Intersects = %v, want %v", tt.name, got, tt.closed)
		}
		if got := base.IntersectsOpen(tt.other); got != tt.open {
			t.Errorf("%s: IntersectsOpen = %v, want %v", tt.name, got, tt.open)
		}
	}
}

func TestContains(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.Contains(NewRect(1, 1, 9, 9)) {
		t.Error("strictly inner rect not contained")
	}
	if !outer.Contains(outer) {
		t.Error("rect does not contain itself")
	}
	if outer.Contains(NewRect(1, 1, 11, 9)) {
		t.Error("overhanging rect reported contained")
	}
	if !outer.ContainsPoint(Point{0, 0}) {
		t.Error("boundary point not contained (closed semantics)")
	}
	if outer.ContainsPointOpen(Point{0, 5}) {
		t.Error("boundary point contained under open semantics")
	}
}

func TestIntersection(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 3)
	inter, ok := a.Intersection(b)
	if !ok || inter != NewRect(1, 1, 2, 2) {
		t.Fatalf("Intersection = %v,%v; want [1,2]x[1,2],true", inter, ok)
	}
	if _, ok := a.Intersection(NewRect(5, 5, 6, 6)); ok {
		t.Fatal("disjoint rects reported intersecting")
	}
	// Touching rectangles intersect in a degenerate rectangle.
	inter, ok = a.Intersection(NewRect(2, 0, 4, 2))
	if !ok || inter.Area() != 0 || inter.Width() != 0 {
		t.Fatalf("touching intersection = %v,%v; want degenerate,true", inter, ok)
	}
}

func TestIntersectionArea(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	tests := []struct {
		b    Rect
		want float64
	}{
		{NewRect(1, 1, 3, 3), 1},
		{NewRect(0, 0, 2, 2), 4},
		{NewRect(2, 2, 3, 3), 0},
		{NewRect(5, 5, 6, 6), 0},
		{NewRect(0.5, 0.5, 1.5, 1.5), 1},
	}
	for _, tt := range tests {
		if got := a.IntersectionArea(tt.b); got != tt.want {
			t.Errorf("IntersectionArea(%v) = %g, want %g", tt.b, got, tt.want)
		}
	}
}

func TestUnionAndEnlargement(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(2, 2, 3, 3)
	u := a.Union(b)
	if u != NewRect(0, 0, 3, 3) {
		t.Fatalf("Union = %v, want [0,3]x[0,3]", u)
	}
	if got := a.Enlargement(b); got != 8 {
		t.Fatalf("Enlargement = %g, want 8", got)
	}
	if got := a.Enlargement(NewRect(0.2, 0.2, 0.8, 0.8)); got != 0 {
		t.Fatalf("Enlargement for contained rect = %g, want 0", got)
	}
}

func TestExpand(t *testing.T) {
	r := NewRect(1, 1, 3, 3)
	if got := r.Expand(0.5); got != NewRect(0.5, 0.5, 3.5, 3.5) {
		t.Fatalf("Expand(0.5) = %v", got)
	}
	// Over-shrinking collapses to the center instead of inverting.
	if got := r.Expand(-2); got != NewRect(2, 2, 2, 2) {
		t.Fatalf("Expand(-2) = %v, want point at center", got)
	}
}

func TestTranslate(t *testing.T) {
	r := NewRect(0, 0, 1, 2)
	if got := r.Translate(5, -1); got != NewRect(5, -1, 6, 1) {
		t.Fatalf("Translate = %v", got)
	}
}

// randRect produces a random valid rectangle inside the unit square.
func randRect(rng *rand.Rand) Rect {
	x, y := rng.Float64(), rng.Float64()
	w, h := rng.Float64()*(1-x), rng.Float64()*(1-y)
	return Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

func TestPropIntersectionSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		return a.Intersects(b) == b.Intersects(a) &&
			a.IntersectionArea(b) == b.IntersectionArea(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectionWithinBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		inter, ok := a.Intersection(b)
		if !ok {
			return !a.Intersects(b)
		}
		return a.Contains(inter) && b.Contains(inter) &&
			inter.Area() == a.IntersectionArea(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropAreaNonNegativeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		if a.Area() < 0 || a.Enlargement(b) < 0 {
			return false
		}
		// Intersection area never exceeds either operand's area.
		ia := a.IntersectionArea(b)
		return ia <= a.Area()+1e-12 && ia <= b.Area()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if s := NewRect(0, 0, 1, 2).String(); s != "[0,1]x[0,2]" {
		t.Errorf("Rect.String() = %q", s)
	}
	if s := (Point{1, 2}).String(); s != "(1,2)" {
		t.Errorf("Point.String() = %q", s)
	}
}

func TestEqual(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	if !a.Equal(a) || a.Equal(NewRect(0, 0, 1, 2)) {
		t.Fatal("Equal semantics wrong")
	}
}
