package geom_test

import (
	"fmt"

	"spatialsel/internal/geom"
)

func ExampleRect_Intersects() {
	a := geom.NewRect(0, 0, 2, 2)
	b := geom.NewRect(1, 1, 3, 3)
	c := geom.NewRect(5, 5, 6, 6)
	fmt.Println(a.Intersects(b), a.Intersects(c))
	// Output: true false
}

func ExampleRect_Intersection() {
	a := geom.NewRect(0, 0, 2, 2)
	b := geom.NewRect(1, 1, 3, 3)
	inter, ok := a.Intersection(b)
	fmt.Println(inter, ok)
	// Output: [1,2]x[1,2] true
}

func ExampleIntersectionPoints() {
	// Two properly intersecting rectangles always share exactly four
	// intersection points — the identity the Geometric Histogram rests on.
	a := geom.NewRect(0, 0, 2, 2)
	b := geom.NewRect(1, 1, 3, 3)
	fmt.Println(geom.IntersectionPoints(a, b))
	// Output: 4
}

func ExampleClassify() {
	b := geom.NewRect(4, 4, 8, 8)
	fmt.Println(geom.Classify(geom.NewRect(2, 2, 5, 5), b))
	fmt.Println(geom.Classify(geom.NewRect(5, 2, 7, 10), b))
	fmt.Println(geom.Classify(geom.NewRect(5, 5, 7, 7), b))
	// Output:
	// corner-overlap
	// cross
	// a-inside-b
}
