// Package geom provides the planar geometry primitives used throughout the
// library: points, axis-parallel rectangles (minimum bounding rectangles,
// MBRs), and the intersection predicates and constructions that the spatial
// join and its selectivity estimators are built on.
//
// All coordinates are float64. Rectangles are closed: two rectangles that
// share only a boundary point are considered intersecting, matching the
// filter-step semantics of the paper (pairs of touching MBRs must survive the
// filter step because the underlying exact geometries may intersect).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Rect is a closed, axis-parallel rectangle, the Minimum Bounding Rectangle
// (MBR) abstraction of a spatial object. The zero value is the degenerate
// rectangle at the origin. Rectangles with MinX > MaxX or MinY > MaxY are
// invalid; constructors never produce them.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle with the given corners, swapping coordinates
// if necessary so that the result is valid regardless of argument order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectFromPoints returns the MBR of the given points. It panics if pts is
// empty, since there is no meaningful empty MBR.
func RectFromPoints(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints with no points")
	}
	r := Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}

// UnitSquare is the [0,1]×[0,1] spatial extent used as the default universe.
var UnitSquare = Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

// Valid reports whether r is a well-formed rectangle (Min ≤ Max on both axes
// and all coordinates finite).
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY) &&
		!math.IsInf(r.MinX, 0) && !math.IsInf(r.MinY, 0) &&
		!math.IsInf(r.MaxX, 0) && !math.IsInf(r.MaxY, 0)
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles (lines, points) have
// area zero but still participate in intersection tests.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the perimeter of r.
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Corners returns the four corner points of r in the order
// (MinX,MinY), (MaxX,MinY), (MaxX,MaxY), (MinX,MaxY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// Intersects reports whether r and s share at least one point (closed
// rectangle semantics: touching boundaries intersect).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// IntersectsOpen reports whether r and s share interior area (strictly
// overlapping, not merely touching).
func (r Rect) IntersectsOpen(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX &&
		r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Contains reports whether s lies entirely within r (boundaries included).
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies within r (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// ContainsPointOpen reports whether p lies strictly inside r.
func (r Rect) ContainsPointOpen(p Point) bool {
	return r.MinX < p.X && p.X < r.MaxX && r.MinY < p.Y && p.Y < r.MaxY
}

// Intersection returns the rectangle common to r and s, and whether it is
// non-empty. When r and s merely touch, the result is a degenerate (zero
// area) rectangle and ok is true.
func (r Rect) Intersection(s Rect) (inter Rect, ok bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}, true
}

// IntersectionArea returns the area shared by r and s (zero if disjoint).
func (r Rect) IntersectionArea(s Rect) float64 {
	w := math.Min(r.MaxX, s.MaxX) - math.Max(r.MinX, s.MinX)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.MaxY, s.MaxY) - math.Max(r.MinY, s.MinY)
	if h <= 0 {
		return 0
	}
	return w * h
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Enlargement returns the increase in area required for r to cover s. It is
// the standard R-tree insertion heuristic quantity and is always ≥ 0.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Expand returns r grown by d on every side. A negative d shrinks r; if the
// shrink would invert the rectangle, the degenerate rectangle at the center
// is returned.
func (r Rect) Expand(d float64) Rect {
	out := Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
	if out.MinX > out.MaxX {
		c := (r.MinX + r.MaxX) / 2
		out.MinX, out.MaxX = c, c
	}
	if out.MinY > out.MaxY {
		c := (r.MinY + r.MaxY) / 2
		out.MinY, out.MaxY = c, c
	}
	return out
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{MinX: r.MinX + dx, MinY: r.MinY + dy, MaxX: r.MaxX + dx, MaxY: r.MaxY + dy}
}

// Equal reports whether r and s have identical coordinates.
func (r Rect) Equal(s Rect) bool { return r == s } //lint:ignore floateq bit-exact identity is this method's documented contract

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }
