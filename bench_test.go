// Package spatialsel's top-level benchmarks regenerate every evaluation
// artifact of the paper (one benchmark per figure panel) and run the
// ablations called out in DESIGN.md.
//
// The figure benchmarks execute the same harnesses as cmd/experiments and
// attach the headline numbers as benchmark metrics (err% — estimation error;
// t1%/t2% — estimation time relative to the join without/with existing
// R-trees; space% — summary size relative to the R-trees), so `go test
// -bench .` doubles as a compact reproduction report. Dataset scale is 0.02
// of the paper's cardinalities by default; override with
// SPATIALSEL_BENCH_SCALE for full-size runs.
package spatialsel

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"spatialsel/internal/core"
	"spatialsel/internal/datagen"
	"spatialsel/internal/exact"
	"spatialsel/internal/experiments"
	"spatialsel/internal/fractal"
	"spatialsel/internal/geom"
	"spatialsel/internal/histogram"
	"spatialsel/internal/iomodel"
	"spatialsel/internal/partjoin"
	"spatialsel/internal/rtree"
	"spatialsel/internal/sample"
	"spatialsel/internal/sdb"
	"spatialsel/internal/sweep"
)

// benchScale is the dataset scale used by the figure benchmarks.
func benchScale() float64 {
	if s := os.Getenv("SPATIALSEL_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.02
}

var (
	workloadsOnce sync.Once
	workloadsVal  []*experiments.Workload
	workloadsErr  error
)

// benchWorkloads prepares the four paper workloads once per test binary.
func benchWorkloads(b *testing.B) []*experiments.Workload {
	b.Helper()
	workloadsOnce.Do(func() {
		workloadsVal, workloadsErr = experiments.PrepareAll(benchScale())
	})
	if workloadsErr != nil {
		b.Fatal(workloadsErr)
	}
	return workloadsVal
}

func workloadByName(b *testing.B, name string) *experiments.Workload {
	b.Helper()
	for _, w := range benchWorkloads(b) {
		if w.Name == name {
			return w
		}
	}
	b.Fatalf("unknown workload %s", name)
	return nil
}

// --- Figure 6: sampling techniques, one benchmark per panel (a)–(d) ---

func benchmarkFigure6(b *testing.B, pair string) {
	w := workloadByName(b, pair)
	b.ResetTimer()
	var rows []experiments.SamplingResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFigure6(w, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the paper's headline configuration: 10/10 RSWR.
	for _, r := range rows {
		if r.Combo == "10/10" && r.Method == "RSWR" {
			b.ReportMetric(r.ErrorPct, "err%")
			b.ReportMetric(r.EstTime1Pct, "t1%")
			b.ReportMetric(r.EstTime2Pct, "t2%")
		}
	}
}

func BenchmarkFigure6a_TS_TCB(b *testing.B)    { benchmarkFigure6(b, "TS-TCB") }
func BenchmarkFigure6b_CAS_CAR(b *testing.B)   { benchmarkFigure6(b, "CAS-CAR") }
func BenchmarkFigure6c_SP_SPG(b *testing.B)    { benchmarkFigure6(b, "SP-SPG") }
func BenchmarkFigure6d_SCRC_SURA(b *testing.B) { benchmarkFigure6(b, "SCRC-SURA") }

// --- Figure 7: histogram techniques, one benchmark per panel (a)–(d) ---

// figure7MaxLevel keeps bench runtime sane while covering the paper's sweet
// spots (PH level 5, GH level 7).
const figure7MaxLevel = 7

func benchmarkFigure7(b *testing.B, pair string) {
	w := workloadByName(b, pair)
	b.ResetTimer()
	var rows []experiments.HistogramResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFigure7(w, figure7MaxLevel)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the paper's headline configuration: GH at level 7.
	for _, r := range rows {
		if r.Technique == "GH" && r.Level == 7 {
			b.ReportMetric(r.ErrorPct, "err%")
			b.ReportMetric(r.EstTimePct, "t%")
			b.ReportMetric(r.SpacePct, "space%")
		}
	}
}

func BenchmarkFigure7a_TCB_TS(b *testing.B)    { benchmarkFigure7(b, "TS-TCB") }
func BenchmarkFigure7b_CAR_CAS(b *testing.B)   { benchmarkFigure7(b, "CAS-CAR") }
func BenchmarkFigure7c_SPG_SP(b *testing.B)    { benchmarkFigure7(b, "SP-SPG") }
func BenchmarkFigure7d_SCRC_SURA(b *testing.B) { benchmarkFigure7(b, "SCRC-SURA") }

// --- Component benchmarks: the costs behind every figure ---

func BenchmarkGroundTruthSweepJoin(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep.Count(w.A.Items, w.B.Items)
	}
}

func BenchmarkGHBuild(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	gh := histogram.MustGH(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gh.Build(w.A); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGHEstimate(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	gh := histogram.MustGH(7)
	sa, err := gh.Build(w.A)
	if err != nil {
		b.Fatal(err)
	}
	sb, err := gh.Build(w.B)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gh.Estimate(sa, sb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPHBuild(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	ph := histogram.MustPH(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ph.Build(w.A); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPHEstimate(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	ph := histogram.MustPH(5)
	sa, _ := ph.Build(w.A)
	sb, _ := ph.Build(w.B)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ph.Estimate(sa, sb); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 1 (DESIGN.md): R-tree join vs plane sweep on samples ---

func benchmarkSampleJoin(b *testing.B, strategy sample.JoinStrategy) {
	// TS-TCB is the densest pair at bench scale, keeping the sampled join
	// statistically meaningful.
	w := workloadByName(b, "TS-TCB")
	tech := sample.MustNew(sample.RSWR, 0.1, sample.WithStrategy(strategy))
	truth := w.Truth
	b.ResetTimer()
	var errPct float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(tech, w.A, w.B, truth)
		if err != nil {
			b.Fatal(err)
		}
		errPct = res.ErrorPct
	}
	b.ReportMetric(errPct, "err%")
}

func BenchmarkAblationSampleJoinRTree(b *testing.B) { benchmarkSampleJoin(b, sample.RTreeJoin) }
func BenchmarkAblationSampleJoinSweep(b *testing.B) { benchmarkSampleJoin(b, sample.SweepJoin) }

// --- Ablation 2: PH AvgSpan correction on/off ---

func benchmarkPHSpan(b *testing.B, opts ...histogram.PHOption) {
	w := workloadByName(b, "CAS-CAR")
	ph := histogram.MustPH(6, opts...)
	b.ResetTimer()
	var errPct float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(ph, w.A, w.B, w.Truth)
		if err != nil {
			b.Fatal(err)
		}
		errPct = res.ErrorPct
	}
	b.ReportMetric(errPct, "err%")
}

func BenchmarkAblationPHAvgSpanOn(b *testing.B) { benchmarkPHSpan(b) }
func BenchmarkAblationPHAvgSpanOff(b *testing.B) {
	benchmarkPHSpan(b, histogram.WithoutSpanCorrection())
}

// --- Ablation 3: revised vs basic GH at equal level ---

func benchmarkGHVariant(b *testing.B, tech core.Technique) {
	w := workloadByName(b, "TS-TCB")
	b.ResetTimer()
	var errPct float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(tech, w.A, w.B, w.Truth)
		if err != nil {
			b.Fatal(err)
		}
		errPct = res.ErrorPct
	}
	b.ReportMetric(errPct, "err%")
}

func BenchmarkAblationGHRevised(b *testing.B) { benchmarkGHVariant(b, histogram.MustGH(5)) }
func BenchmarkAblationGHBasic(b *testing.B)   { benchmarkGHVariant(b, histogram.MustBasicGH(5)) }

// --- Ablation 4: R-tree build strategies for samples ---

func benchmarkRTreeBuild(b *testing.B, load func([]rtree.Item, ...rtree.Option) (*rtree.Tree, error)) {
	w := workloadByName(b, "SCRC-SURA")
	items := rtree.ItemsFromRects(w.A.Items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := load(items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRTreeBuildSTR(b *testing.B)     { benchmarkRTreeBuild(b, rtree.BulkLoadSTR) }
func BenchmarkAblationRTreeBuildHilbert(b *testing.B) { benchmarkRTreeBuild(b, rtree.BulkLoadHilbert) }
func BenchmarkAblationRTreeBuildInsert(b *testing.B)  { benchmarkRTreeBuild(b, rtree.BulkLoadInsert) }

// --- Exact-join engine comparison (cross-validation baselines) ---

func BenchmarkJoinEngines(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep.Count(w.A.Items, w.B.Items)
		}
	})
	b.Run("rtree", func(b *testing.B) {
		ta, _ := rtree.BulkLoadSTR(rtree.ItemsFromRects(w.A.Items))
		tb, _ := rtree.BulkLoadSTR(rtree.ItemsFromRects(w.B.Items))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rtree.JoinCount(ta, tb)
		}
	})
	b.Run("partition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partjoin.Count(w.A.Items, w.B.Items, partjoin.Config{})
		}
	})
}

// BenchmarkHistogramLevels sweeps GH build cost across levels, exposing the
// exponential space/time growth the paper's Figure 7 bottom panels show.
func BenchmarkHistogramLevels(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	for _, level := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("GH-h%d", level), func(b *testing.B) {
			gh := histogram.MustGH(level)
			for i := 0; i < b.N; i++ {
				if _, err := gh.Build(w.A); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSamplingMethods compares the draw cost of the three samplers —
// the reason the paper rejects SS (its Hilbert sort dominates).
func BenchmarkSamplingMethods(b *testing.B) {
	w := workloadByName(b, "CAS-CAR")
	for _, m := range []sample.Method{sample.RS, sample.RSWR, sample.SS} {
		b.Run(m.String(), func(b *testing.B) {
			tech := sample.MustNew(m, 0.1)
			for i := 0; i < b.N; i++ {
				if _, err := tech.Build(w.B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDatagen measures workload generation itself (it is part of every
// experiment's setup cost).
func BenchmarkDatagen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		datagen.PaperPairs(0.01)
	}
}

// --- Extension benchmarks (DESIGN.md Ext1–Ext4) ---

// BenchmarkRangeEstimate compares range-query estimation across the three
// summary kinds against executing the query on the R-tree.
func BenchmarkRangeEstimate(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	q := geom.NewRect(0.3, 0.55, 0.55, 0.85)
	ghRaw, err := histogram.MustGH(7).Build(w.A)
	if err != nil {
		b.Fatal(err)
	}
	gh := ghRaw.(*histogram.GHSummary)
	phRaw, _ := histogram.MustPH(5).Build(w.A)
	ph := phRaw.(*histogram.PHSummary)
	parRaw, _ := histogram.NewParametric().Build(w.A)
	par := parRaw.(*histogram.ParametricSummary)
	tree, _ := rtree.BulkLoadSTR(rtree.ItemsFromRects(w.A.Items))

	actual := float64(tree.Count(q))
	b.Run("GH", func(b *testing.B) {
		var est float64
		for i := 0; i < b.N; i++ {
			est = gh.EstimateRange(q)
		}
		b.ReportMetric(core.RelativeError(est, actual), "err%")
	})
	b.Run("PH", func(b *testing.B) {
		var est float64
		for i := 0; i < b.N; i++ {
			est = ph.EstimateRange(q)
		}
		b.ReportMetric(core.RelativeError(est, actual), "err%")
	})
	b.Run("Parametric", func(b *testing.B) {
		var est float64
		for i := 0; i < b.N; i++ {
			est = par.EstimateRange(q)
		}
		b.ReportMetric(core.RelativeError(est, actual), "err%")
	})
	b.Run("RTreeExact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Count(q)
		}
	})
}

// BenchmarkFractalFit measures the one-time power-law fitting cost on point
// data, plus the per-ε evaluation (which is effectively free).
func BenchmarkFractalFit(b *testing.B) {
	pts := datagen.Points("p", 50000, 25, 0.04, 300)
	b.Run("self", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fractal.NewSelfJoin(pts, 2, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	other := datagen.Points("q", 50000, 25, 0.04, 301)
	b.Run("cross", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fractal.NewCrossJoin(pts, other, 2, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	sj, err := fractal.NewSelfJoin(pts, 2, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sj.EstimatePairs(0.01)
		}
	})
}

// BenchmarkIOModel compares the analytic node-access prediction with an
// actual execution, reporting the prediction/measurement ratio.
func BenchmarkIOModel(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	tree, _ := rtree.BulkLoadSTR(rtree.ItemsFromRects(w.B.Items))
	levels := tree.LevelStats()
	q := geom.NewRect(0.2, 0.2, 0.5, 0.5)
	measured := float64(iomodel.MeasureRangeAccesses(tree, q))
	b.ResetTimer()
	var predicted float64
	for i := 0; i < b.N; i++ {
		predicted = iomodel.RangeAccesses(levels, q)
	}
	if measured > 0 {
		b.ReportMetric(predicted/measured, "pred/meas")
	}
}

// BenchmarkSDBPlanAndExecute measures the mini-DBMS pipeline: planning a
// three-way join from statistics (microseconds) and executing it.
func BenchmarkSDBPlanAndExecute(b *testing.B) {
	c, err := sdb.NewCatalogAtLevel(6)
	if err != nil {
		b.Fatal(err)
	}
	for _, mk := range []func() (*sdb.Table, error){
		func() (*sdb.Table, error) { return c.Create(datagen.Cluster("x", 5000, 0.3, 0.3, 0.08, 0.01, 400)) },
		func() (*sdb.Table, error) { return c.Create(datagen.Cluster("y", 4000, 0.32, 0.32, 0.1, 0.01, 401)) },
		func() (*sdb.Table, error) { return c.Create(datagen.Uniform("z", 6000, 0.01, 402)) },
	} {
		if _, err := mk(); err != nil {
			b.Fatal(err)
		}
	}
	q := sdb.Query{
		Tables:     []string{"x", "y", "z"},
		Predicates: []sdb.Predicate{{Left: "x", Right: "y"}, {Left: "y", Right: "z"}},
	}
	b.Run("plan-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Plan(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.PlanDP(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute", func(b *testing.B) {
		plan, err := c.Plan(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRefinement measures the two-step join: filter cost vs refinement
// cost, with the false-hit ratio as a metric.
func BenchmarkRefinement(b *testing.B) {
	rivers, err := exact.NewLayer("rivers", exact.GenPolylines(3000, 8, 0.01, 410))
	if err != nil {
		b.Fatal(err)
	}
	parcels, err := exact.NewLayer("parcels", exact.GenPolygons(4000, 7, 0.01, 411))
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exact.Join(rivers, parcels)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.FalseHitRatio()
	}
	b.ReportMetric(ratio*100, "falseHit%")
}

// BenchmarkGHMaintenance measures the per-update cost of keeping a GH
// histogram current, the number a rebuild amortizes against.
func BenchmarkGHMaintenance(b *testing.B) {
	w := workloadByName(b, "SCRC-SURA")
	builder, err := histogram.GHBuilderFrom(w.A, 7)
	if err != nil {
		b.Fatal(err)
	}
	items := w.A.Normalize().Items
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := items[i%len(items)]
		if err := builder.Remove(r); err != nil {
			b.Fatal(err)
		}
		if err := builder.Add(r); err != nil {
			b.Fatal(err)
		}
	}
}
