// Command sdbd is the spatial mini-database daemon: it serves the catalog,
// GH-statistics estimation, planner, and executor over an HTTP JSON API.
//
//	$ go run ./cmd/sdbd -addr :8080
//	$ curl -s localhost:8080/healthz
//	$ curl -s -X POST localhost:8080/v1/tables -d '{"name":"roads","generator":{"kind":"polyline","n":50000,"seed":7}}'
//	$ curl -s -X POST localhost:8080/v1/estimate -d '{"left":"roads","right":"streams"}'
//
// See the README's "Running the server" section for the full endpoint tour.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spatialsel/internal/dataset"
	"spatialsel/internal/resilience"
	"spatialsel/internal/server"
	"spatialsel/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sdbd:", err)
		os.Exit(1)
	}
}

// options is the parsed command line: the server Config plus daemon-only
// settings. Split out of run so tests can assert flag defaults (notably that
// the debug endpoints are opt-in).
type options struct {
	cfg   server.Config
	addr  string
	grace time.Duration
	load  string
}

// parseFlags builds the daemon's options from argv.
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("sdbd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	level := fs.Int("level", 0, "GH statistics level (0 = paper default, level 7)")
	cacheSize := fs.Int("cache", 256, "estimator cache capacity (entries)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (0 disables)")
	maxRows := fs.Int("max-rows", 10000, "max result rows per query response")
	workers := fs.Int("workers", 0, "default executor parallelism (0 = auto from GOMAXPROCS, 1 = serial)")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown grace period")
	load := fs.String("load", "", "directory of .sds dataset files to preload as tables")
	walDir := fs.String("wal-dir", "", "directory for per-table write-ahead logs (empty disables durable ingest)")
	walRetry := fs.Int("wal-retry", 4, "max retries for transient WAL write/fsync failures (-1 disables retry)")
	degradedReadOnly := fs.Bool("degraded-read-only", true, "on persistent WAL failure, flip the table to read-only degraded mode instead of poisoning it (false = fail-stop)")
	admission := fs.Bool("admission", true, "enable the estimate-driven admission gate on /v1/query (adaptive concurrency limit + cost gate)")
	maxInflight := fs.Int("max-inflight", 0, "cap on the adaptive query concurrency limit (0 = 4x GOMAXPROCS)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	enableExpvar := fs.Bool("expvar", false, "mount expvar at /debug/vars (off by default)")
	enableTelemetry := fs.Bool("telemetry", true, "run the telemetry layer (time-series scraper, request flight recorder, drift watchdog) and mount /v1/debug/{timeseries,requests}")
	telemetryInterval := fs.Duration("telemetry-interval", 10*time.Second, "telemetry scrape interval")
	telemetryRing := fs.Int("telemetry-ring", 360, "samples retained per time series")
	slowQuery := fs.Duration("slow-query", 250*time.Millisecond, "flight recorder always-retains requests at least this slow")
	flightRing := fs.Int("flight-ring", 512, "request events retained by the flight recorder")
	flightSample := fs.Int("flight-sample", 16, "keep 1 in N fast successful requests in the flight recorder")
	driftThreshold := fs.Float64("drift-threshold", 0.25, "windowed p90 relative error above which the estimator-drift watchdog flags a table pair")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	retryMax := *walRetry
	if retryMax == 0 {
		retryMax = -1 // flag 0 means "no retries"; the policy spells that -1
	}
	opts := &options{
		cfg: server.Config{
			Level:           *level,
			CacheSize:       *cacheSize,
			RequestTimeout:  *timeout,
			MaxResultRows:   *maxRows,
			Workers:         *workers,
			EnablePprof:     *enablePprof,
			EnableExpvar:    *enableExpvar,
			WALDir:          *walDir,
			WALRetry:        resilience.RetryPolicy{Max: retryMax},
			WALFailStop:     !*degradedReadOnly,
			Admission:       *admission,
			MaxInflight:     *maxInflight,
			AdmissionTarget: *slowQuery,
			EnableTelemetry: *enableTelemetry,
			Telemetry: telemetry.Options{
				Interval:   *telemetryInterval,
				RingSize:   *telemetryRing,
				SlowQuery:  *slowQuery,
				FlightRing: *flightRing,
				SampleN:    *flightSample,
				Drift:      telemetry.DriftConfig{Threshold: *driftThreshold},
			},
		},
		addr:  *addr,
		grace: *grace,
		load:  *load,
	}
	if *timeout == 0 {
		opts.cfg.RequestTimeout = -1 // Config: negative disables, zero means default
	}
	return opts, nil
}

// run parses flags and serves until SIGINT/SIGTERM; split from main so tests
// can drive it.
func run(args []string, logw *os.File) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewJSONHandler(logw, nil))
	opts.cfg.Logger = logger
	srv, err := server.New(opts.cfg)
	if err != nil {
		return err
	}
	if opts.load != "" {
		if err := preload(srv, opts.load); err != nil {
			return err
		}
	}
	// Recover WAL-backed tables before serving: replayed state must be
	// readable from the first request. Recovery wins over -load for tables
	// present in both (the WAL is newer — it holds post-load mutations).
	recovered, err := srv.Ingest().Recover()
	if err != nil {
		return fmt.Errorf("wal recovery: %w", err)
	}
	if len(recovered) > 0 {
		logger.Info("recovered tables from WAL", "tables", recovered)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Background re-packer: rebuilds degraded write trees off the hot path.
	go srv.Ingest().Run(ctx)
	defer srv.Ingest().Close()
	// Telemetry scraper: samples /metrics state into the time-series store
	// on the configured interval. Nil-safe when -telemetry=false.
	go srv.Telemetry().Run(ctx)
	logger.Info("sdbd listening", "addr", opts.addr, "stats_level", srv.Store().Level(),
		"workers", opts.cfg.Workers, "wal_dir", opts.cfg.WALDir,
		"pprof", opts.cfg.EnablePprof, "expvar", opts.cfg.EnableExpvar,
		"telemetry", opts.cfg.EnableTelemetry)
	err = srv.ListenAndServe(ctx, opts.addr, opts.grace)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// preload registers every .sds file under dir as a table named after the
// file.
func preload(srv *server.Server, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || len(e.Name()) < 5 || e.Name()[len(e.Name())-4:] != ".sds" {
			continue
		}
		d, err := dataset.LoadFile(dir + "/" + e.Name())
		if err != nil {
			return fmt.Errorf("preload %s: %w", e.Name(), err)
		}
		d.Name = e.Name()[:len(e.Name())-4]
		if _, _, err := srv.Store().Register(d, false); err != nil {
			return err
		}
	}
	return nil
}
