// Command sdbd is the spatial mini-database daemon: it serves the catalog,
// GH-statistics estimation, planner, and executor over an HTTP JSON API.
//
//	$ go run ./cmd/sdbd -addr :8080
//	$ curl -s localhost:8080/healthz
//	$ curl -s -X POST localhost:8080/v1/tables -d '{"name":"roads","generator":{"kind":"polyline","n":50000,"seed":7}}'
//	$ curl -s -X POST localhost:8080/v1/estimate -d '{"left":"roads","right":"streams"}'
//
// See the README's "Running the server" section for the full endpoint tour.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spatialsel/internal/dataset"
	"spatialsel/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sdbd:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until SIGINT/SIGTERM; split from main so tests
// can drive it.
func run(args []string, logw *os.File) error {
	fs := flag.NewFlagSet("sdbd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	level := fs.Int("level", 0, "GH statistics level (0 = paper default, level 7)")
	cacheSize := fs.Int("cache", 256, "estimator cache capacity (entries)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (0 disables)")
	maxRows := fs.Int("max-rows", 10000, "max result rows per query response")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown grace period")
	load := fs.String("load", "", "directory of .sds dataset files to preload as tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewJSONHandler(logw, nil))
	cfg := server.Config{
		Level:          *level,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		MaxResultRows:  *maxRows,
		Logger:         logger,
	}
	if *timeout == 0 {
		cfg.RequestTimeout = -1 // Config: negative disables, zero means default
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *load != "" {
		if err := preload(srv, *load); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("sdbd listening", "addr", *addr, "stats_level", srv.Store().Level())
	err = srv.ListenAndServe(ctx, *addr, *grace)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// preload registers every .sds file under dir as a table named after the
// file.
func preload(srv *server.Server, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || len(e.Name()) < 5 || e.Name()[len(e.Name())-4:] != ".sds" {
			continue
		}
		d, err := dataset.LoadFile(dir + "/" + e.Name())
		if err != nil {
			return fmt.Errorf("preload %s: %w", e.Name(), err)
		}
		d.Name = e.Name()[:len(e.Name())-4]
		if _, _, err := srv.Store().Register(d, false); err != nil {
			return err
		}
	}
	return nil
}
