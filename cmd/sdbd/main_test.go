package main

import (
	"path/filepath"
	"testing"
	"time"

	"spatialsel/internal/datagen"
	"spatialsel/internal/dataset"
	"spatialsel/internal/server"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestDebugEndpointsOptIn(t *testing.T) {
	opts, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.EnablePprof || opts.cfg.EnableExpvar {
		t.Fatalf("debug endpoints must default off, got pprof=%v expvar=%v",
			opts.cfg.EnablePprof, opts.cfg.EnableExpvar)
	}
	opts, err = parseFlags([]string{"-pprof", "-expvar"})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.cfg.EnablePprof || !opts.cfg.EnableExpvar {
		t.Fatalf("flags did not enable debug endpoints: pprof=%v expvar=%v",
			opts.cfg.EnablePprof, opts.cfg.EnableExpvar)
	}
}

func TestWorkersFlag(t *testing.T) {
	opts, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Workers != 0 {
		t.Fatalf("workers must default to 0 (auto), got %d", opts.cfg.Workers)
	}
	opts, err = parseFlags([]string{"-workers", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Workers != 3 {
		t.Fatalf("-workers 3 parsed as %d", opts.cfg.Workers)
	}
}

func TestPreload(t *testing.T) {
	dir := t.TempDir()
	if err := dataset.SaveFile(filepath.Join(dir, "roads.sds"), datagen.Uniform("x", 200, 0.01, 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Level: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := preload(srv, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Store().Snapshot().Catalog.Table("roads"); err != nil {
		t.Fatalf("preloaded table missing: %v", err)
	}
	if err := preload(srv, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestResilienceFlags(t *testing.T) {
	opts, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Admission and degraded read-only mode default on; fail-stop is the
	// opt-out spelling of -degraded-read-only=false.
	if !opts.cfg.Admission || opts.cfg.WALFailStop {
		t.Fatalf("defaults: admission=%v failstop=%v, want true/false",
			opts.cfg.Admission, opts.cfg.WALFailStop)
	}
	if opts.cfg.MaxInflight != 0 {
		t.Fatalf("max-inflight default = %d, want 0 (auto)", opts.cfg.MaxInflight)
	}
	if opts.cfg.WALRetry.Max != 4 {
		t.Fatalf("wal-retry default = %d, want 4", opts.cfg.WALRetry.Max)
	}
	if opts.cfg.AdmissionTarget != 250*time.Millisecond {
		t.Fatalf("admission target default = %v, want the slow-query default", opts.cfg.AdmissionTarget)
	}

	opts, err = parseFlags([]string{
		"-admission=false", "-max-inflight", "12",
		"-wal-retry", "0", "-degraded-read-only=false", "-slow-query", "100ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Admission || opts.cfg.MaxInflight != 12 || !opts.cfg.WALFailStop {
		t.Fatalf("resilience flags not threaded through: %+v", opts.cfg)
	}
	if opts.cfg.WALRetry.Max != -1 {
		t.Fatalf("-wal-retry 0 parsed as Max=%d, want -1 (disabled)", opts.cfg.WALRetry.Max)
	}
	if opts.cfg.AdmissionTarget != 100*time.Millisecond {
		t.Fatalf("admission target = %v, want -slow-query value", opts.cfg.AdmissionTarget)
	}
}

func TestTelemetryFlags(t *testing.T) {
	opts, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike pprof/expvar, telemetry defaults on: it is the production
	// observability surface, not a debug tap.
	if !opts.cfg.EnableTelemetry {
		t.Fatal("telemetry must default on")
	}
	if opts.cfg.Telemetry.SlowQuery != 250*time.Millisecond {
		t.Fatalf("slow-query default = %v", opts.cfg.Telemetry.SlowQuery)
	}

	opts, err = parseFlags([]string{
		"-telemetry=false", "-telemetry-interval", "2s", "-telemetry-ring", "17",
		"-slow-query", "75ms", "-flight-ring", "33", "-flight-sample", "5",
		"-drift-threshold", "0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.EnableTelemetry {
		t.Fatal("-telemetry=false ignored")
	}
	tc := opts.cfg.Telemetry
	if tc.Interval != 2*time.Second || tc.RingSize != 17 ||
		tc.SlowQuery != 75*time.Millisecond || tc.FlightRing != 33 ||
		tc.SampleN != 5 || tc.Drift.Threshold != 0.5 {
		t.Fatalf("telemetry flags not threaded through: %+v", tc)
	}
}
