package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"spatialsel/internal/datagen"
	"spatialsel/internal/dataset"
	"spatialsel/internal/sdb"
)

// script runs commands through the REPL and returns the combined output.
func script(t *testing.T, lines ...string) string {
	t.Helper()
	sh := newShell(sdb.NewCatalog())
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	var out bytes.Buffer
	sh.repl(in, &out)
	return out.String()
}

func TestHelpAndUnknown(t *testing.T) {
	out := script(t, "help", "frobnicate", "quit")
	if !strings.Contains(out, "commands:") {
		t.Error("help text missing")
	}
	if !strings.Contains(out, "unknown command") {
		t.Error("unknown command not reported")
	}
}

func TestCreateTablesAndQuery(t *testing.T) {
	out := script(t,
		"create roads polyline 3000 7",
		"create streams polyline 800 8",
		"tables",
		"estimate join roads streams",
		"estimate range roads 0.1,0.1,0.5,0.5",
		"explain roads,streams on roads~streams",
		"query roads,streams on roads~streams",
		"quit",
	)
	for _, want := range []string{
		"created roads (3000 items)",
		"created streams (800 items)",
		"R-tree height",
		"est. roads ⋈ streams",
		"est. |roads",
		"plan (est. cost",
		"rows ([",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestQueryWithWindow(t *testing.T) {
	out := script(t,
		"create a uniform 2000 1",
		"create b uniform 2000 2",
		"query a,b on a~b window a 0.2,0.2,0.6,0.6",
		"quit",
	)
	if !strings.Contains(out, "window [0.2,0.6]x[0.2,0.6]") {
		t.Errorf("window clause not reflected in plan:\n%s", out)
	}
}

func TestCreateValidation(t *testing.T) {
	out := script(t,
		"create x unknownkind 100 1",
		"create x uniform notanumber 1",
		"create x uniform 100 notanumber",
		"create x uniform",
		"create dup uniform 100 1",
		"create dup uniform 100 1",
		"quit",
	)
	if got := strings.Count(out, "error:"); got != 5 {
		t.Errorf("expected 5 errors, saw %d:\n%s", got, out)
	}
}

func TestDropAndSave(t *testing.T) {
	dir := t.TempDir()
	out := script(t,
		"create a uniform 500 1",
		"save "+dir,
		"drop a",
		"drop a",
		"load "+dir,
		"tables",
		"load /nonexistent-dir",
		"load",
		"quit",
	)
	if !strings.Contains(out, "saved 1 tables") || !strings.Contains(out, "dropped a") {
		t.Errorf("save/drop output:\n%s", out)
	}
	if !strings.Contains(out, "error: no table") {
		t.Errorf("double drop not reported:\n%s", out)
	}
	if !strings.Contains(out, "loaded 1 tables") {
		t.Errorf("load output missing:\n%s", out)
	}
	if got := strings.Count(out, "error:"); got != 3 {
		t.Errorf("expected 3 errors, saw %d:\n%s", got, out)
	}
}

func TestOpenDatasetFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.sds")
	if err := dataset.SaveFile(path, datagen.Uniform("ignored", 700, 0.01, 3)); err != nil {
		t.Fatal(err)
	}
	out := script(t,
		"open mytable "+path,
		"tables",
		"open broken "+filepath.Join(dir, "missing.sds"),
		"open x",
		"quit",
	)
	if !strings.Contains(out, "opened mytable (700 items)") {
		t.Errorf("open output:\n%s", out)
	}
	if !strings.Contains(out, "mytable") {
		t.Errorf("tables output missing renamed table:\n%s", out)
	}
	if got := strings.Count(out, "error:"); got != 2 {
		t.Errorf("expected 2 errors, saw %d:\n%s", got, out)
	}
}

func TestQueryParsing(t *testing.T) {
	out := script(t,
		"create a uniform 200 1",
		"create b uniform 200 2",
		"explain a,b",                       // missing "on"
		"explain a,b on a-b",                // bad predicate
		"explain a,b on a~b window a",       // truncated window
		"explain a,b on a~b window a x,y,z", // bad window coords
		"estimate",
		"estimate what a b",
		"estimate join a",
		"estimate range a",
		"quit",
	)
	if got := strings.Count(out, "error:"); got != 8 {
		t.Errorf("expected 8 parse errors, saw %d:\n%s", got, out)
	}
}

func TestNearestCommand(t *testing.T) {
	out := script(t,
		"create a uniform 500 1",
		"nearest a 0.5,0.5 3",
		"nearest a 0.5,0.5 0",
		"nearest a half,0.5 3",
		"nearest missing 0.5,0.5 3",
		"nearest a",
		"quit",
	)
	if !strings.Contains(out, " 1. item") || !strings.Contains(out, " 3. item") {
		t.Errorf("nearest output missing ranks:\n%s", out)
	}
	if got := strings.Count(out, "error:"); got != 4 {
		t.Errorf("expected 4 errors, saw %d:\n%s", got, out)
	}
}

func TestStrictModeAbortsOnFirstError(t *testing.T) {
	sh := newShell(sdb.NewCatalog())
	sh.strict = true
	var out bytes.Buffer
	err := sh.repl(strings.NewReader("create a uniform 200 1\nfrobnicate\ncreate b uniform 200 2\n"), &out)
	if err == nil {
		t.Fatal("strict repl returned nil on malformed command")
	}
	if !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("unexpected error: %v", err)
	}
	if strings.Contains(out.String(), "created b") {
		t.Errorf("strict repl kept executing after the error:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "error:"); got != 1 {
		t.Errorf("expected exactly 1 reported error, saw %d:\n%s", got, out.String())
	}
}

func TestStrictModeCleanScriptSucceeds(t *testing.T) {
	sh := newShell(sdb.NewCatalog())
	sh.strict = true
	var out bytes.Buffer
	err := sh.repl(strings.NewReader("create a uniform 200 1\ntables\nquit\n"), &out)
	if err != nil {
		t.Fatalf("clean script errored: %v", err)
	}
	if !strings.Contains(out.String(), "created a") {
		t.Errorf("script output:\n%s", out.String())
	}
}

func TestEmptyLinesAndEOF(t *testing.T) {
	// Blank lines are skipped; EOF ends the loop without `quit`.
	sh := newShell(sdb.NewCatalog())
	var out bytes.Buffer
	sh.repl(strings.NewReader("\n\n"), &out)
	if !strings.Contains(out.String(), "sdb>") {
		t.Error("prompt not printed")
	}
}
