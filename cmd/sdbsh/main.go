// Command sdbsh is an interactive shell for the miniature spatial database,
// exercising the paper's full pipeline from a prompt: create tables from
// generators or files, inspect optimizer statistics, explain join plans,
// and execute multi-way spatial joins.
//
//	$ go run ./cmd/sdbsh
//	sdb> create roads polyline 50000 7
//	sdb> create streams polyline 10000 8
//	sdb> estimate join roads streams
//	sdb> query roads,streams on roads~streams
//
// The shell reads one command per line; `help` lists the grammar. It is
// deliberately tiny — the library is the product, the shell is the demo.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spatialsel/internal/datagen"
	"spatialsel/internal/dataset"
	"spatialsel/internal/geom"
	"spatialsel/internal/sdb"
)

func main() {
	// When stdin is a pipe or file (CI smoke tests, `sdbsh < script`), run
	// strictly: the first malformed or failing command aborts the session
	// with a non-zero exit instead of being silently skipped. Interactive
	// use keeps the forgiving report-and-continue loop.
	strict := false
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		strict = true
	}
	if !strict {
		fmt.Println("sdbsh — spatial mini-database shell (type `help`)")
	}
	sh := newShell(sdb.NewCatalog())
	sh.strict = strict
	if err := sh.repl(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdbsh: aborting on error:", err)
		os.Exit(1)
	}
}

// shell holds the session state.
type shell struct {
	catalog *sdb.Catalog
	// strict aborts the REPL on the first command error (script mode)
	// instead of reporting and continuing (interactive mode).
	strict bool
}

func newShell(c *sdb.Catalog) *shell { return &shell{catalog: c} }

// repl reads commands until EOF or `quit`. In strict mode it returns the
// first command error; otherwise it always returns nil.
func (s *shell) repl(in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "sdb> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return nil
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.exec(line, out); err != nil {
			fmt.Fprintln(out, "error:", err)
			if s.strict {
				return err
			}
		}
	}
}

// exec dispatches one command line.
func (s *shell) exec(line string, out io.Writer) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Fprint(out, helpText)
		return nil
	case "tables":
		for _, name := range s.catalog.Names() {
			t, err := s.catalog.Table(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-16s %8d items, R-tree height %d, stats GH(h=%d)\n",
				name, t.Len(), t.Index.Height(), s.catalog.StatisticsLevelUsed())
		}
		return nil
	case "create":
		return s.cmdCreate(fields[1:], out)
	case "open":
		return s.cmdOpen(fields[1:], out)
	case "drop":
		if len(fields) != 2 {
			return fmt.Errorf("usage: drop <table>")
		}
		if !s.catalog.Drop(fields[1]) {
			return fmt.Errorf("no table %q", fields[1])
		}
		fmt.Fprintf(out, "dropped %s\n", fields[1])
		return nil
	case "save":
		if len(fields) != 2 {
			return fmt.Errorf("usage: save <dir>")
		}
		if err := s.catalog.Save(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved %d tables to %s\n", len(s.catalog.Names()), fields[1])
		return nil
	case "load":
		if len(fields) != 2 {
			return fmt.Errorf("usage: load <dir>")
		}
		c, err := sdb.Load(fields[1], s.catalog.StatisticsLevelUsed())
		if err != nil {
			return err
		}
		s.catalog = c
		fmt.Fprintf(out, "loaded %d tables from %s\n", len(c.Names()), fields[1])
		return nil
	case "estimate":
		return s.cmdEstimate(fields[1:], out)
	case "nearest":
		return s.cmdNearest(fields[1:], out)
	case "explain", "query":
		q, err := parseQuery(fields[1:])
		if err != nil {
			return err
		}
		plan, err := s.catalog.Plan(q)
		if err != nil {
			return err
		}
		fmt.Fprint(out, plan.Explain())
		if fields[0] == "explain" {
			return nil
		}
		res, err := plan.Execute()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d rows (%v)\n", res.Len(), res.Columns)
		return nil
	}
	return fmt.Errorf("unknown command %q (try `help`)", fields[0])
}

const helpText = `commands:
  create <name> <kind> <n> <seed>   generate and register a table
                                    kinds: uniform cluster multicluster diagonal
                                           polyline tiling points polygons
  open <name> <file.sds>            register a dataset file as a table
  tables                            list tables
  drop <name>                       remove a table
  save <dir>                        persist all tables
  load <dir>                        replace the catalog with a saved one
  estimate join <a> <b>             predicted join size from statistics
  estimate range <t> x0,y0,x1,y1    predicted window-query cardinality
  nearest <t> <x,y> <k>             k nearest items to a point (exact, via R-tree)
  explain <t1,t2,...> on a~b c~d [window <t> x0,y0,x1,y1]
                                    show the optimizer's plan
  query   <t1,t2,...> on a~b ...    plan and execute
  quit
`

func (s *shell) cmdCreate(args []string, out io.Writer) error {
	if len(args) != 4 {
		return fmt.Errorf("usage: create <name> <kind> <n> <seed>")
	}
	name, kind := args[0], args[1]
	n, err := strconv.Atoi(args[2])
	if err != nil || n <= 0 {
		return fmt.Errorf("bad n %q", args[2])
	}
	seed, err := strconv.ParseInt(args[3], 10, 64)
	if err != nil {
		return fmt.Errorf("bad seed %q", args[3])
	}
	var d *dataset.Dataset
	switch kind {
	case "uniform":
		d = datagen.Uniform(name, n, 0.005, seed)
	case "cluster":
		d = datagen.Cluster(name, n, 0.4, 0.6, 0.1, 0.005, seed)
	case "multicluster":
		d = datagen.MultiCluster(name, n, 5, 0.05, 0.005, seed)
	case "diagonal":
		d = datagen.Diagonal(name, n, 0.05, 0.005, seed)
	case "polyline":
		d = datagen.PolylineTrace(name, n, 50, 0.004, seed)
	case "tiling":
		d = datagen.PolygonTiling(name, n, seed)
	case "points":
		d = datagen.Points(name, n, 20, 0.04, seed)
	case "polygons":
		d = datagen.HeavyTailedPolygons(name, n, 20, 0.05, 0.002, 1.4, seed)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if _, err := s.catalog.Create(d); err != nil {
		return err
	}
	fmt.Fprintf(out, "created %s (%d items)\n", name, n)
	return nil
}

func (s *shell) cmdOpen(args []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: open <name> <file.sds>")
	}
	d, err := dataset.LoadFile(args[1])
	if err != nil {
		return err
	}
	d.Name = args[0]
	if _, err := s.catalog.Create(d); err != nil {
		return err
	}
	fmt.Fprintf(out, "opened %s (%d items)\n", args[0], d.Len())
	return nil
}

func (s *shell) cmdEstimate(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: estimate join|range ...")
	}
	switch args[0] {
	case "join":
		if len(args) != 3 {
			return fmt.Errorf("usage: estimate join <a> <b>")
		}
		size, err := s.catalog.EstimateJoinSize(args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "est. %s ⋈ %s ≈ %.0f pairs\n", args[1], args[2], size)
		return nil
	case "range":
		if len(args) != 3 {
			return fmt.Errorf("usage: estimate range <table> x0,y0,x1,y1")
		}
		w, err := parseWindow(args[2])
		if err != nil {
			return err
		}
		cnt, err := s.catalog.EstimateRangeCount(args[1], w)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "est. |%s ∩ %v| ≈ %.0f items\n", args[1], w, cnt)
		return nil
	}
	return fmt.Errorf("unknown estimate %q", args[0])
}

func (s *shell) cmdNearest(args []string, out io.Writer) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: nearest <table> <x,y> <k>")
	}
	t, err := s.catalog.Table(args[0])
	if err != nil {
		return err
	}
	var x, y float64
	if _, err := fmt.Sscanf(args[1], "%f,%f", &x, &y); err != nil {
		return fmt.Errorf("bad point %q (want x,y)", args[1])
	}
	k, err := strconv.Atoi(args[2])
	if err != nil || k <= 0 {
		return fmt.Errorf("bad k %q", args[2])
	}
	ids := t.Index.Nearest(geom.Point{X: x, Y: y}, k)
	for rank, id := range ids {
		fmt.Fprintf(out, "%2d. item %6d %v\n", rank+1, id, t.Data.Items[id])
	}
	return nil
}

// parseQuery parses "t1,t2,t3 on a~b b~c [window t x0,y0,x1,y1]...".
func parseQuery(args []string) (sdb.Query, error) {
	var q sdb.Query
	if len(args) < 3 || args[1] != "on" {
		return q, fmt.Errorf("usage: <t1,t2,...> on a~b [b~c ...] [window <t> <rect>]")
	}
	q.Tables = strings.Split(args[0], ",")
	i := 2
	for ; i < len(args) && args[i] != "window"; i++ {
		parts := strings.SplitN(args[i], "~", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return q, fmt.Errorf("bad predicate %q (want a~b)", args[i])
		}
		q.Predicates = append(q.Predicates, sdb.Predicate{Left: parts[0], Right: parts[1]})
	}
	for i < len(args) {
		if args[i] != "window" || i+2 >= len(args) {
			return q, fmt.Errorf("bad window clause at %q", args[i])
		}
		w, err := parseWindow(args[i+2])
		if err != nil {
			return q, err
		}
		if q.Windows == nil {
			q.Windows = map[string]geom.Rect{}
		}
		q.Windows[args[i+1]] = w
		i += 3
	}
	return q, nil
}

func parseWindow(s string) (geom.Rect, error) {
	var x0, y0, x1, y1 float64
	if _, err := fmt.Sscanf(s, "%f,%f,%f,%f", &x0, &y0, &x1, &y1); err != nil {
		return geom.Rect{}, fmt.Errorf("bad window %q (want x0,y0,x1,y1)", s)
	}
	return geom.NewRect(x0, y0, x1, y1), nil
}
