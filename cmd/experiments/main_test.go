package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllSmallScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "all", "-scale", "0.002", "-level", "3", "-pair", "SCRC-SURA"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Actual-join statistics", "Figure 6", "Figure 7", "SCRC-SURA"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleFigures(t *testing.T) {
	for _, fig := range []string{"stats", "7"} {
		var buf bytes.Buffer
		if err := run([]string{"-fig", fig, "-scale", "0.002", "-level", "2", "-pair", "SP-SPG"}, &buf); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if buf.Len() == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "9"}, &buf); err == nil {
		t.Error("bad -fig accepted")
	}
	if err := run([]string{"-fig", "stats", "-scale", "0.002", "-pair", "NOPE"}, &buf); err == nil {
		t.Error("bad -pair accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
