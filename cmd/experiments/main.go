// Command experiments regenerates the paper's evaluation artifacts as text:
// the Figure-6 sampling series, the Figure-7 histogram series, and the
// auxiliary actual-join statistics table, for all four dataset pairs.
//
// Usage:
//
//	experiments -fig 6 -scale 0.1          # sampling results, all pairs
//	experiments -fig 7 -scale 0.1 -level 9 # histogram results, all pairs
//	experiments -fig stats -scale 0.1      # dataset / exact-join statistics
//	experiments -fig all -scale 0.05
//
// Scale multiplies the paper's dataset cardinalities (scale 1 reproduces the
// full-size evaluation; expect minutes of runtime and gigabytes of memory at
// that setting).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spatialsel/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which artifact to regenerate: 6|7|stats|all")
	scale := fs.Float64("scale", 0.05, "dataset scale relative to the paper's cardinalities")
	maxLevel := fs.Int("level", 9, "maximum gridding level for figure 7")
	seed := fs.Int64("seed", 1, "PRNG seed for RSWR sampling")
	pair := fs.String("pair", "", "restrict to one pair (TS-TCB|CAS-CAR|SP-SPG|SCRC-SURA)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fig != "6" && *fig != "7" && *fig != "stats" && *fig != "range" && *fig != "all" {
		return fmt.Errorf("unknown -fig %q (6|7|stats|range|all)", *fig)
	}
	fmt.Fprintf(out, "preparing workloads at scale %g ...\n", *scale)
	ws, err := experiments.PrepareAll(*scale)
	if err != nil {
		return err
	}
	if *pair != "" {
		var filtered []*experiments.Workload
		for _, w := range ws {
			if w.Name == *pair {
				filtered = append(filtered, w)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("unknown pair %q", *pair)
		}
		ws = filtered
	}

	if *fig == "stats" || *fig == "all" {
		experiments.PrintStats(out, experiments.RunStats(ws))
		fmt.Fprintln(out)
	}
	if *fig == "6" || *fig == "all" {
		for _, w := range ws {
			rows, err := experiments.RunFigure6(w, *seed)
			if err != nil {
				return err
			}
			experiments.PrintFigure6(out, rows)
			fmt.Fprintln(out)
		}
	}
	if *fig == "7" || *fig == "all" {
		for _, w := range ws {
			rows, err := experiments.RunFigure7(w, *maxLevel)
			if err != nil {
				return err
			}
			experiments.PrintFigure7(out, rows)
			fmt.Fprintln(out)
		}
	}
	if *fig == "range" || *fig == "all" {
		for _, w := range ws {
			rows, err := experiments.RunRangeQueries(w, 6, 25, *seed)
			if err != nil {
				return err
			}
			experiments.PrintRangeQueries(out, rows)
			fmt.Fprintln(out)
		}
	}
	return nil
}
