// Command spatialsel is the library's command-line front end. It generates
// datasets, reports their statistics, runs exact spatial joins, builds
// histogram files, and estimates join selectivities from built summaries —
// the full workflow of the paper, file to file.
//
// Usage:
//
//	spatialsel generate -kind uniform -n 100000 -out sura.sds
//	spatialsel stats -in sura.sds
//	spatialsel join -a scrc.sds -b sura.sds
//	spatialsel build -tech gh -level 7 -in sura.sds -out sura.shf
//	spatialsel estimate -tech gh -level 7 -a scrc.shf -b sura.shf
//	spatialsel sample-estimate -method rswr -frac 0.1 -a scrc.sds -b sura.sds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"spatialsel/internal/core"
	"spatialsel/internal/datagen"
	"spatialsel/internal/dataset"
	"spatialsel/internal/fractal"
	"spatialsel/internal/geom"
	"spatialsel/internal/histogram"
	"spatialsel/internal/sample"
	"spatialsel/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spatialsel:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return usageError("")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	case "join":
		return cmdJoin(args[1:], out)
	case "build":
		return cmdBuild(args[1:], out)
	case "estimate":
		return cmdEstimate(args[1:], out)
	case "sample-estimate":
		return cmdSampleEstimate(args[1:], out)
	case "range-estimate":
		return cmdRangeEstimate(args[1:], out)
	case "distance-estimate":
		return cmdDistanceEstimate(args[1:], out)
	case "help", "-h", "--help":
		printUsage(out)
		return nil
	}
	return usageError(args[0])
}

const subcommands = "generate|stats|join|build|estimate|sample-estimate|range-estimate|distance-estimate"

func usageError(cmd string) error {
	if cmd == "" {
		return fmt.Errorf("missing subcommand (%s)", subcommands)
	}
	return fmt.Errorf("unknown subcommand %q (%s)", cmd, subcommands)
}

func printUsage(out io.Writer) {
	fmt.Fprint(out, `spatialsel — spatial-join selectivity estimation toolkit

subcommands:
  generate         generate a synthetic dataset (-kind, -n, -seed, -out)
  stats            print a dataset's summary statistics (-in)
  join             exact spatial join of two datasets (-a, -b)
  build            build a histogram file (-tech, -level, -in, -out)
  estimate         estimate selectivity from two histogram files (-tech, -level, -a, -b)
  sample-estimate  estimate via sampling directly from datasets (-method, -frac, -a, -b)
  range-estimate   estimate a range query's result size from a histogram file (-hist, -window)
  distance-estimate estimate an epsilon distance join on point data (-a, -b, -eps)
`)
}

func cmdRangeEstimate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("range-estimate", flag.ContinueOnError)
	histPath := fs.String("hist", "", "histogram file (SHF1; parametric, PH or GH)")
	window := fs.String("window", "", "query window as x0,y0,x1,y1 in unit-square coordinates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *histPath == "" || *window == "" {
		return fmt.Errorf("range-estimate: -hist and -window are required")
	}
	var x0, y0, x1, y1 float64
	if _, err := fmt.Sscanf(*window, "%f,%f,%f,%f", &x0, &y0, &x1, &y1); err != nil {
		return fmt.Errorf("range-estimate: bad -window %q: %v", *window, err)
	}
	s, err := histogram.LoadSummary(*histPath)
	if err != nil {
		return err
	}
	re, ok := s.(histogram.RangeEstimator)
	if !ok {
		return fmt.Errorf("range-estimate: %T does not support range estimation", s)
	}
	q := geom.NewRect(x0, y0, x1, y1)
	est := re.EstimateRange(q)
	fmt.Fprintf(out, "dataset:       %s (%d items)\n", s.DatasetName(), s.ItemCount())
	fmt.Fprintf(out, "window:        %v\n", q)
	fmt.Fprintf(out, "est. matches:  %.1f\n", est)
	if n := s.ItemCount(); n > 0 {
		fmt.Fprintf(out, "est. sel.:     %.6e\n", est/float64(n))
	}
	return nil
}

func cmdDistanceEstimate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("distance-estimate", flag.ContinueOnError)
	aPath := fs.String("a", "", "left point-dataset file")
	bPath := fs.String("b", "", "right point-dataset file (omit for a self join)")
	eps := fs.Float64("eps", 0.01, "L-infinity join distance")
	minLevel := fs.Int("min-level", 2, "coarsest box-counting level")
	maxLevel := fs.Int("max-level", 7, "finest box-counting level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" {
		return fmt.Errorf("distance-estimate: -a is required")
	}
	a, err := dataset.LoadFile(*aPath)
	if err != nil {
		return err
	}
	if *bPath == "" {
		sj, err := fractal.NewSelfJoin(a, *minLevel, *maxLevel)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "correlation dimension D2: %.3f\n", sj.Dimension())
		fmt.Fprintf(out, "est. pairs (eps=%g):      %.1f\n", *eps, sj.EstimatePairs(*eps))
		fmt.Fprintf(out, "est. selectivity:         %.6e\n", sj.EstimateSelectivity(*eps))
		return nil
	}
	b, err := dataset.LoadFile(*bPath)
	if err != nil {
		return err
	}
	cj, err := fractal.NewCrossJoin(a, b, *minLevel, *maxLevel)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pair-count exponent E: %.3f\n", cj.Exponent())
	fmt.Fprintf(out, "est. pairs (eps=%g):   %.1f\n", *eps, cj.EstimatePairs(*eps))
	fmt.Fprintf(out, "est. selectivity:      %.6e\n", cj.EstimateSelectivity(*eps))
	return nil
}

func cmdGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	kind := fs.String("kind", "uniform", "uniform|cluster|multicluster|diagonal|polyline|tiling|points|polygons|TS|TCB|CAS|CAR|SP|SPG|SCRC|SURA")
	n := fs.Int("n", 100000, "number of items (ignored for named paper datasets)")
	seed := fs.Int64("seed", 1, "PRNG seed")
	scale := fs.Float64("scale", 1, "scale factor for named paper datasets")
	size := fs.Float64("size", 0.004, "maximum item size (generators that take one)")
	outPath := fs.String("out", "", "output file (SDS1 format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("generate: -out is required")
	}
	var d *dataset.Dataset
	switch strings.ToLower(*kind) {
	case "uniform":
		d = datagen.Uniform("uniform", *n, *size, *seed)
	case "cluster":
		d = datagen.Cluster("cluster", *n, 0.4, 0.7, 0.12, *size, *seed)
	case "multicluster":
		d = datagen.MultiCluster("multicluster", *n, 5, 0.05, *size, *seed)
	case "diagonal":
		d = datagen.Diagonal("diagonal", *n, 0.05, *size, *seed)
	case "polyline":
		d = datagen.PolylineTrace("polyline", *n, 50, 0.004, *seed)
	case "tiling":
		d = datagen.PolygonTiling("tiling", *n, *seed)
	case "points":
		d = datagen.Points("points", *n, 20, 0.04, *seed)
	case "polygons":
		d = datagen.HeavyTailedPolygons("polygons", *n, 20, 0.05, 0.002, 1.4, *seed)
	case "ts":
		d = datagen.TS(*scale)
	case "tcb":
		d = datagen.TCB(*scale)
	case "cas":
		d = datagen.CAS(*scale)
	case "car":
		d = datagen.CAR(*scale)
	case "sp":
		d = datagen.SP(*scale)
	case "spg":
		d = datagen.SPG(*scale)
	case "scrc":
		d = datagen.SCRC(*scale)
	case "sura":
		d = datagen.SURA(*scale)
	default:
		return fmt.Errorf("generate: unknown kind %q", *kind)
	}
	if err := dataset.SaveFile(*outPath, d); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d items\n", *outPath, d.Len())
	return nil
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "dataset file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	d, err := dataset.LoadFile(*in)
	if err != nil {
		return err
	}
	s := d.ComputeStats()
	fmt.Fprintf(out, "name:       %s\n", d.Name)
	fmt.Fprintf(out, "items:      %d\n", s.N)
	fmt.Fprintf(out, "extent:     %v\n", d.Extent)
	fmt.Fprintf(out, "coverage:   %.6f\n", s.Coverage)
	fmt.Fprintf(out, "avg width:  %.6f\n", s.AvgWidth)
	fmt.Fprintf(out, "avg height: %.6f\n", s.AvgHeight)
	fmt.Fprintf(out, "avg area:   %.8f\n", s.AvgArea)
	fmt.Fprintf(out, "max w/h:    %.6f / %.6f\n", s.MaxWidth, s.MaxHeight)
	return nil
}

func cmdJoin(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("join", flag.ContinueOnError)
	aPath := fs.String("a", "", "left dataset file")
	bPath := fs.String("b", "", "right dataset file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("join: -a and -b are required")
	}
	a, err := dataset.LoadFile(*aPath)
	if err != nil {
		return err
	}
	b, err := dataset.LoadFile(*bPath)
	if err != nil {
		return err
	}
	start := time.Now()
	count := sweep.Count(a.Items, b.Items)
	elapsed := time.Since(start)
	sel := 0.0
	if a.Len() > 0 && b.Len() > 0 {
		sel = float64(count) / (float64(a.Len()) * float64(b.Len()))
	}
	fmt.Fprintf(out, "pairs:       %d\n", count)
	fmt.Fprintf(out, "selectivity: %.6e\n", sel)
	fmt.Fprintf(out, "join time:   %s\n", elapsed)
	return nil
}

// techByName instantiates a histogram technique from CLI flags.
func techByName(name string, level int) (core.Technique, error) {
	switch strings.ToLower(name) {
	case "parametric":
		return histogram.NewParametric(), nil
	case "ph":
		return histogram.NewPH(level)
	case "gh":
		return histogram.NewGH(level)
	case "basicgh":
		return histogram.NewBasicGH(level)
	}
	return nil, fmt.Errorf("unknown technique %q (parametric|ph|gh|basicgh)", name)
}

func cmdBuild(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	tech := fs.String("tech", "gh", "parametric|ph|gh|basicgh")
	level := fs.Int("level", 7, "gridding level h (cells = 4^h)")
	in := fs.String("in", "", "dataset file")
	outPath := fs.String("out", "", "output histogram file (SHF1 format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outPath == "" {
		return fmt.Errorf("build: -in and -out are required")
	}
	d, err := dataset.LoadFile(*in)
	if err != nil {
		return err
	}
	var s core.Summary
	var name string
	start := time.Now()
	if strings.EqualFold(*tech, "euler") {
		// Euler histograms answer range queries only, so they sit outside
		// the join-technique interface.
		e, err := histogram.NewEuler(*level)
		if err != nil {
			return err
		}
		es, err := e.Build(d)
		if err != nil {
			return err
		}
		s, name = es, e.Name()
	} else {
		t, err := techByName(*tech, *level)
		if err != nil {
			return err
		}
		if s, err = t.Build(d); err != nil {
			return err
		}
		name = t.Name()
	}
	elapsed := time.Since(start)
	if err := histogram.SaveSummary(*outPath, s); err != nil {
		return err
	}
	fmt.Fprintf(out, "built %s for %s: %d bytes in %s\n", name, d.Name, s.SizeBytes(), elapsed)
	return nil
}

func cmdEstimate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("estimate", flag.ContinueOnError)
	tech := fs.String("tech", "gh", "parametric|ph|gh|basicgh")
	level := fs.Int("level", 7, "gridding level used at build time")
	aPath := fs.String("a", "", "left histogram file")
	bPath := fs.String("b", "", "right histogram file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("estimate: -a and -b are required")
	}
	t, err := techByName(*tech, *level)
	if err != nil {
		return err
	}
	sa, err := histogram.LoadSummary(*aPath)
	if err != nil {
		return err
	}
	sb, err := histogram.LoadSummary(*bPath)
	if err != nil {
		return err
	}
	start := time.Now()
	est, err := t.Estimate(sa, sb)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "technique:      %s\n", t.Name())
	fmt.Fprintf(out, "est. pairs:     %.1f\n", est.PairCount)
	fmt.Fprintf(out, "est. sel.:      %.6e\n", est.Selectivity)
	fmt.Fprintf(out, "estimate time:  %s\n", elapsed)
	return nil
}

func cmdSampleEstimate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sample-estimate", flag.ContinueOnError)
	method := fs.String("method", "rswr", "rs|rswr|ss")
	frac := fs.Float64("frac", 0.1, "sampling fraction in (0,1]")
	fracB := fs.Float64("frac-b", 0, "right-side fraction (defaults to -frac)")
	seed := fs.Int64("seed", 1, "PRNG seed for rswr")
	aPath := fs.String("a", "", "left dataset file")
	bPath := fs.String("b", "", "right dataset file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("sample-estimate: -a and -b are required")
	}
	var m sample.Method
	switch strings.ToLower(*method) {
	case "rs":
		m = sample.RS
	case "rswr":
		m = sample.RSWR
	case "ss":
		m = sample.SS
	default:
		return fmt.Errorf("sample-estimate: unknown method %q", *method)
	}
	//lint:ignore floateq an untouched flag is exactly its 0 default; exact sentinel intended
	if *fracB == 0 {
		*fracB = *frac
	}
	asym, err := sample.NewAsymmetric(m, *frac, *fracB, sample.WithSeed(*seed))
	if err != nil {
		return err
	}
	a, err := dataset.LoadFile(*aPath)
	if err != nil {
		return err
	}
	b, err := dataset.LoadFile(*bPath)
	if err != nil {
		return err
	}
	start := time.Now()
	sa, err := asym.Build(a)
	if err != nil {
		return err
	}
	sb, err := asym.BuildRight(b)
	if err != nil {
		return err
	}
	est, err := asym.Estimate(sa, sb)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "technique:     %s\n", asym.Name())
	fmt.Fprintf(out, "est. pairs:    %.1f\n", est.PairCount)
	fmt.Fprintf(out, "est. sel.:     %.6e\n", est.Selectivity)
	fmt.Fprintf(out, "total time:    %s\n", elapsed)
	return nil
}
