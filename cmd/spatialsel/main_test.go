package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// runOK executes a subcommand and returns its output, failing on error.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

// runErr executes a subcommand expecting failure.
func runErr(t *testing.T, args ...string) error {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	if err == nil {
		t.Fatalf("run(%v) succeeded, want error", args)
	}
	return err
}

func TestUsage(t *testing.T) {
	out := runOK(t, "help")
	for _, want := range []string{"generate", "estimate", "sample-estimate"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage missing %q", want)
		}
	}
	runErr(t)
	runErr(t, "bogus")
}

func TestFullWorkflow(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sds")
	b := filepath.Join(dir, "b.sds")
	ha := filepath.Join(dir, "a.shf")
	hb := filepath.Join(dir, "b.shf")

	out := runOK(t, "generate", "-kind", "cluster", "-n", "2000", "-seed", "3", "-out", a)
	if !strings.Contains(out, "2000 items") {
		t.Fatalf("generate output: %q", out)
	}
	runOK(t, "generate", "-kind", "uniform", "-n", "2000", "-seed", "4", "-out", b)

	out = runOK(t, "stats", "-in", a)
	for _, want := range []string{"items:      2000", "coverage:", "avg width:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q in %q", want, out)
		}
	}

	out = runOK(t, "join", "-a", a, "-b", b)
	if !strings.Contains(out, "pairs:") || !strings.Contains(out, "selectivity:") {
		t.Fatalf("join output: %q", out)
	}

	runOK(t, "build", "-tech", "gh", "-level", "5", "-in", a, "-out", ha)
	runOK(t, "build", "-tech", "gh", "-level", "5", "-in", b, "-out", hb)
	out = runOK(t, "estimate", "-tech", "gh", "-level", "5", "-a", ha, "-b", hb)
	if !strings.Contains(out, "GH(h=5)") || !strings.Contains(out, "est. sel.:") {
		t.Fatalf("estimate output: %q", out)
	}

	out = runOK(t, "sample-estimate", "-method", "rs", "-frac", "0.5", "-a", a, "-b", b)
	if !strings.Contains(out, "RS(50%/50%)") {
		t.Fatalf("sample-estimate output: %q", out)
	}
}

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	kinds := []string{"uniform", "cluster", "multicluster", "diagonal", "polyline",
		"tiling", "points", "polygons"}
	for _, k := range kinds {
		path := filepath.Join(dir, k+".sds")
		runOK(t, "generate", "-kind", k, "-n", "300", "-out", path)
	}
	// Named paper datasets honour -scale.
	for _, k := range []string{"TS", "TCB", "CAS", "CAR", "SP", "SPG", "SCRC", "SURA"} {
		path := filepath.Join(dir, k+".sds")
		out := runOK(t, "generate", "-kind", k, "-scale", "0.001", "-out", path)
		if !strings.Contains(out, "items") {
			t.Errorf("%s: output %q", k, out)
		}
	}
	runErr(t, "generate", "-kind", "nope", "-out", filepath.Join(dir, "x.sds"))
	runErr(t, "generate", "-kind", "uniform") // missing -out
}

func TestEstimateTechniqueValidation(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sds")
	runOK(t, "generate", "-kind", "uniform", "-n", "100", "-out", a)
	ha := filepath.Join(dir, "a.shf")
	runOK(t, "build", "-tech", "ph", "-level", "3", "-in", a, "-out", ha)

	// Estimating a PH summary with the GH technique must fail cleanly.
	if err := runErr(t, "estimate", "-tech", "gh", "-level", "3", "-a", ha, "-b", ha); err == nil {
		t.Fatal("mismatched technique accepted")
	}
	// Unknown technique and missing flags fail.
	runErr(t, "build", "-tech", "zzz", "-in", a, "-out", ha)
	runErr(t, "build", "-tech", "gh")
	runErr(t, "estimate", "-tech", "gh")
	runErr(t, "stats")
	runErr(t, "stats", "-in", filepath.Join(dir, "missing.sds"))
	runErr(t, "join", "-a", a)
	runErr(t, "sample-estimate", "-a", a)
	runErr(t, "sample-estimate", "-method", "zzz", "-a", a, "-b", a)
	runErr(t, "sample-estimate", "-method", "rs", "-frac", "7", "-a", a, "-b", a)
}

func TestParametricAndBasicGHPaths(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sds")
	runOK(t, "generate", "-kind", "uniform", "-n", "500", "-out", a)
	for _, tech := range []string{"parametric", "basicgh"} {
		h := filepath.Join(dir, tech+".shf")
		runOK(t, "build", "-tech", tech, "-level", "3", "-in", a, "-out", h)
		out := runOK(t, "estimate", "-tech", tech, "-level", "3", "-a", h, "-b", h)
		if !strings.Contains(out, "est. pairs:") {
			t.Errorf("%s estimate output: %q", tech, out)
		}
	}
}

func TestRangeEstimate(t *testing.T) {
	dir := t.TempDir()
	d := filepath.Join(dir, "d.sds")
	h := filepath.Join(dir, "d.shf")
	runOK(t, "generate", "-kind", "uniform", "-n", "2000", "-out", d)
	runOK(t, "build", "-tech", "gh", "-level", "5", "-in", d, "-out", h)
	out := runOK(t, "range-estimate", "-hist", h, "-window", "0.2,0.2,0.6,0.6")
	if !strings.Contains(out, "est. matches:") || !strings.Contains(out, "est. sel.:") {
		t.Fatalf("range-estimate output: %q", out)
	}
	// All histogram kinds support ranges except basic GH.
	for _, tech := range []string{"parametric", "ph"} {
		hp := filepath.Join(dir, tech+".shf")
		runOK(t, "build", "-tech", tech, "-level", "4", "-in", d, "-out", hp)
		runOK(t, "range-estimate", "-hist", hp, "-window", "0,0,0.5,0.5")
	}
	hb := filepath.Join(dir, "basic.shf")
	runOK(t, "build", "-tech", "basicgh", "-level", "4", "-in", d, "-out", hb)
	runErr(t, "range-estimate", "-hist", hb, "-window", "0,0,0.5,0.5")
	// Euler histograms build and answer range queries too.
	he := filepath.Join(dir, "euler.shf")
	out = runOK(t, "build", "-tech", "euler", "-level", "4", "-in", d, "-out", he)
	if !strings.Contains(out, "Euler(h=4)") {
		t.Fatalf("euler build output: %q", out)
	}
	runOK(t, "range-estimate", "-hist", he, "-window", "0.25,0.25,0.75,0.75")
	// Validation.
	runErr(t, "range-estimate", "-hist", h)
	runErr(t, "range-estimate", "-window", "0,0,1,1")
	runErr(t, "range-estimate", "-hist", h, "-window", "zero,0,1,1")
	runErr(t, "range-estimate", "-hist", filepath.Join(dir, "missing.shf"), "-window", "0,0,1,1")
}

func TestDistanceEstimate(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sds")
	b := filepath.Join(dir, "b.sds")
	runOK(t, "generate", "-kind", "points", "-n", "3000", "-seed", "5", "-out", a)
	runOK(t, "generate", "-kind", "points", "-n", "3000", "-seed", "6", "-out", b)
	out := runOK(t, "distance-estimate", "-a", a, "-eps", "0.01")
	if !strings.Contains(out, "correlation dimension") {
		t.Fatalf("self-join output: %q", out)
	}
	out = runOK(t, "distance-estimate", "-a", a, "-b", b, "-eps", "0.01")
	if !strings.Contains(out, "pair-count exponent") {
		t.Fatalf("cross-join output: %q", out)
	}
	runErr(t, "distance-estimate")
	runErr(t, "distance-estimate", "-a", a, "-min-level", "9", "-max-level", "3")
	runErr(t, "distance-estimate", "-a", filepath.Join(dir, "missing.sds"))
	runErr(t, "distance-estimate", "-a", a, "-b", filepath.Join(dir, "missing.sds"))
}

func TestSampleEstimateAsymmetricFractions(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sds")
	b := filepath.Join(dir, "b.sds")
	runOK(t, "generate", "-kind", "uniform", "-n", "1000", "-seed", "9", "-out", a)
	runOK(t, "generate", "-kind", "uniform", "-n", "1000", "-seed", "10", "-out", b)
	out := runOK(t, "sample-estimate", "-method", "ss", "-frac", "0.1", "-frac-b", "1", "-a", a, "-b", b)
	if !strings.Contains(out, "SS(10%/100%)") {
		t.Fatalf("asymmetric output: %q", out)
	}
}
