package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const (
	floateqCorpus = "./internal/lint/testdata/src/floateq"
	cleanCorpus   = "./internal/lint/testdata/src/clean"
)

// runVet invokes run with captured streams. Corpus paths are resolved against
// the module root by the loader, so the test's working directory is
// irrelevant.
func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"atomicfield", "ctxpoll", "floateq", "fsyncorder", "lockorder",
		"maporder", "metriclabel", "publishmut", "unlockpath",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout)
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runVet(t, cleanCorpus)
	if code != 0 {
		t.Fatalf("clean corpus exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean corpus produced diagnostics:\n%s", stdout)
	}
	if !strings.Contains(stderr, "0 diagnostics") {
		t.Errorf("summary missing from stderr:\n%s", stderr)
	}
}

func TestSeededViolationsExitNonZero(t *testing.T) {
	code, stdout, stderr := runVet(t, floateqCorpus)
	if code != 1 {
		t.Fatalf("seeded corpus exited %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "floateq.go:20:11: floateq:") {
		t.Errorf("stdout missing expected diagnostic position:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 suppressed") {
		t.Errorf("summary should report the corpus suppression:\n%s", stderr)
	}
}

func TestDisableSkipsAnalyzer(t *testing.T) {
	code, stdout, _ := runVet(t, "-disable", "floateq", floateqCorpus)
	if code != 0 {
		t.Fatalf("-disable floateq still exited %d:\n%s", code, stdout)
	}
}

func TestEnableRestrictsSuite(t *testing.T) {
	// Only ctxpoll enabled: the floateq corpus has no ctxpoll violations.
	code, stdout, _ := runVet(t, "-enable", "ctxpoll", floateqCorpus)
	if code != 0 {
		t.Fatalf("-enable ctxpoll on floateq corpus exited %d:\n%s", code, stdout)
	}
	// Enabling the matching analyzer still finds the seeded violations.
	code, _, _ = runVet(t, "-enable", "floateq", floateqCorpus)
	if code != 1 {
		t.Fatalf("-enable floateq on floateq corpus exited %d, want 1", code)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, stderr := runVet(t, "-enable", "nosuch", cleanCorpus)
	if code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr should name the unknown analyzer:\n%s", stderr)
	}
}

func TestBadPatternIsUsageError(t *testing.T) {
	code, _, _ := runVet(t, "./no/such/dir")
	if code != 2 {
		t.Fatalf("bad pattern exited %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runVet(t, "-json", floateqCorpus)
	if code != 1 {
		t.Fatalf("-json on seeded corpus exited %d, want 1 (exit codes must not change)", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 JSON diagnostics, got %d:\n%s", len(lines), stdout)
	}
	for _, line := range lines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer != "floateq" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		// Stable field order: struct order is encoding order.
		if !strings.HasPrefix(line, `{"file":`) {
			t.Errorf("field order changed, line starts: %.40s", line)
		}
	}
	// A clean package emits no output and exits zero under -json too.
	code, stdout, _ = runVet(t, "-json", cleanCorpus)
	if code != 0 || stdout != "" {
		t.Errorf("-json clean corpus: code=%d stdout=%q", code, stdout)
	}
}

func TestStaleIgnoresFlag(t *testing.T) {
	const staleCorpus = "./internal/lint/testdata/src/staleignore"
	// Without the flag the stale directive is invisible.
	code, stdout, _ := runVet(t, staleCorpus)
	if code != 0 || stdout != "" {
		t.Fatalf("without -stale-ignores: code=%d stdout=%q", code, stdout)
	}
	// With it, the dead suppression is a finding and fails the run.
	code, stdout, _ = runVet(t, "-stale-ignores", staleCorpus)
	if code != 1 {
		t.Fatalf("-stale-ignores exited %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "stale //lint:ignore floateq") {
		t.Errorf("stdout missing stale-directive report:\n%s", stdout)
	}
	// A directive whose analyzer did not run is not judged stale.
	code, stdout, _ = runVet(t, "-stale-ignores", "-enable", "maporder", staleCorpus)
	if code != 0 || stdout != "" {
		t.Errorf("partial suite judged a directive it could not vindicate: code=%d stdout=%q", code, stdout)
	}
}
