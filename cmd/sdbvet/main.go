// Command sdbvet runs the project's static-analysis suite (internal/lint)
// over the repository: nine analyzers that machine-check the engine's
// concurrency, determinism, durability, and metrics invariants — five
// syntactic ones plus four flow-sensitive ones built on the internal/lint/cfg
// control-flow graphs. It is wired into `make lint` (and thus `make check`),
// so a violation fails the build.
//
//	$ go run ./cmd/sdbvet ./...
//	$ go run ./cmd/sdbvet -disable floateq ./internal/rtree
//	$ go run ./cmd/sdbvet -json -stale-ignores ./...
//	$ go run ./cmd/sdbvet -list
//
// Packages load and analyze in parallel (bounded by GOMAXPROCS); output is
// deterministic regardless. Deliberate violations are suppressed in source
// with a reasoned directive on or directly above the offending line:
//
//	//lint:ignore floateq zero-value sentinel; exact comparison intended
//
// -stale-ignores additionally reports directives that suppress nothing.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Diagnostics go
// to stdout — one per line, file:line:col: analyzer: message, or one JSON
// object per line with -json — and the one-line summary and errors go to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"spatialsel/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON Lines (one object per line)")
	stale := fs.Bool("stale-ignores", false, "also report //lint:ignore directives that suppress nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "sdbvet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sdbvet:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "sdbvet:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "sdbvet:", err)
		return 2
	}
	workers := runtime.GOMAXPROCS(0)
	pkgs, err := loader.LoadDirs(dirs, workers)
	if err != nil {
		fmt.Fprintln(stderr, "sdbvet:", err)
		return 2
	}
	res := lint.RunOpts(pkgs, analyzers, lint.Options{StaleIgnores: *stale, Workers: workers})
	res.Relativize(loader.Root)
	if *jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "sdbvet:", err)
			return 2
		}
	} else {
		res.Write(stdout)
	}
	fmt.Fprintln(stderr, res.Summary())
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable to the full suite.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	listOf := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		m := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
			}
			m[n] = true
		}
		return m, nil
	}
	on, err := listOf(enable)
	if err != nil {
		return nil, err
	}
	off, err := listOf(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if on != nil && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
