package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"spatialsel/internal/datagen"
	"spatialsel/internal/geom"
	"spatialsel/internal/histogram"
	"spatialsel/internal/ingest"
	"spatialsel/internal/rtree"
	"spatialsel/internal/sdb"
	"spatialsel/internal/server"
)

// ingestErrorGate is the accuracy bar for maintained statistics: the GH
// estimate must stay within 5% relative error of the exact join while the
// table churns — the paper's accuracy claim carried over to the write path.
const ingestErrorGate = 0.05

// IngestReport measures the live mutation path: sustained throughput, WAL
// group-commit fsync latency, estimate accuracy under churn (the gate), and
// background re-pack activity.
type IngestReport struct {
	Records        int         `json:"records"`
	Batches        int         `json:"batches"`
	RecordsPerSec  float64     `json:"records_per_sec"`
	WALFsyncMicros Percentiles `json:"wal_fsync_micros"`
	WALFsyncs      int         `json:"wal_fsyncs"`
	MaxRelError    float64     `json:"max_rel_error"`
	MeanRelError   float64     `json:"mean_rel_error"`
	ErrorChecks    int         `json:"error_checks"`
	Repacks        int         `json:"repacks"`
	ErrorGatePass  bool        `json:"error_gate_pass"`
}

// runIngest churns a WAL-backed table through a serving store while a static
// probe table provides the join target: every few batches the maintained GH
// estimate is compared against the exact join over the published snapshot.
func runIngest(scale float64, level int, seed int64) (IngestReport, error) {
	// The accuracy gate needs enough expected join pairs that relative error
	// measures statistics drift, not small-sample noise — so the churn
	// workload has a cardinality floor independent of -scale.
	n := int(20000 * scale)
	if n < 8000 {
		n = 8000
	}
	store, err := server.NewStore(level)
	if err != nil {
		return IngestReport{}, err
	}
	if _, _, err := store.Register(datagen.Uniform("live", n, 0.005, seed), false); err != nil {
		return IngestReport{}, err
	}
	if _, _, err := store.Register(datagen.Uniform("probe", n, 0.005, seed+1), false); err != nil {
		return IngestReport{}, err
	}

	walDir, err := os.MkdirTemp("", "benchrun-wal-")
	if err != nil {
		return IngestReport{}, err
	}
	defer os.RemoveAll(walDir)

	var mu sync.Mutex
	var fsyncs []int64
	manager := ingest.NewManager(ingest.Options{
		Level: level,
		Dir:   walDir,
		Lookup: func(name string) (*sdb.Table, error) {
			return store.Snapshot().Catalog.Table(name)
		},
		Publish: store.Publish,
	})
	defer manager.Close()
	tab, err := manager.Table("live")
	if err != nil {
		return IngestReport{}, err
	}
	tab.SetFsyncObserver(func(d time.Duration) {
		mu.Lock()
		fsyncs = append(fsyncs, d.Microseconds())
		mu.Unlock()
	})
	policy := ingest.RepackPolicy{MinChurn: n / 4, MaxChurnRatio: 0.25, MaxOverlap: 0.3}
	gh, err := histogram.NewGH(level)
	if err != nil {
		return IngestReport{}, err
	}
	probe, err := store.Snapshot().Catalog.Table("probe")
	if err != nil {
		return IngestReport{}, err
	}

	rep := IngestReport{}
	rng := rand.New(rand.NewSource(seed + 2))
	liveIDs := make([]int, n)
	for i := range liveIDs {
		liveIDs[i] = i
	}
	mkRect := func() geom.Rect {
		x, y := rng.Float64()*0.99, rng.Float64()*0.99
		return geom.NewRect(x, y, math.Min(1, x+0.005), math.Min(1, y+0.005))
	}

	const batches = 300
	var errSum float64
	start := time.Now()
	for i := 0; i < batches; i++ {
		var m ingest.Mutation
		for k := 0; k < 8; k++ {
			m.Inserts = append(m.Inserts, mkRect())
		}
		for k := 0; k < 4 && len(liveIDs) > n/2; k++ {
			pick := rng.Intn(len(liveIDs))
			dup := false
			for _, id := range m.Deletes {
				if id == liveIDs[pick] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			m.Deletes = append(m.Deletes, liveIDs[pick])
			liveIDs[pick] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
		res, err := tab.Apply(m)
		if err != nil {
			return rep, err
		}
		liveIDs = append(liveIDs, res.IDs...)
		rep.Records += m.Records()
		rep.Batches++

		if policy.ShouldRepack(tab.Degradation()) {
			if _, err := tab.Repack(); err != nil {
				return rep, err
			}
			rep.Repacks++
		}

		// Accuracy gate: every 25 batches, maintained estimate vs exact join
		// over the snapshot readers actually see.
		if i%25 == 24 {
			live, err := store.Snapshot().Catalog.Table("live")
			if err != nil {
				return rep, err
			}
			est, err := gh.Estimate(live.Stats, probe.Stats)
			if err != nil {
				return rep, err
			}
			actual := rtree.JoinCount(live.Index, probe.Index)
			denom := math.Max(1, float64(actual))
			rel := math.Abs(est.PairCount-float64(actual)) / denom
			errSum += rel
			rep.ErrorChecks++
			if rel > rep.MaxRelError {
				rep.MaxRelError = rel
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		rep.RecordsPerSec = float64(rep.Records) / elapsed
	}
	if rep.ErrorChecks > 0 {
		rep.MeanRelError = errSum / float64(rep.ErrorChecks)
	}
	mu.Lock()
	rep.WALFsyncs = len(fsyncs)
	rep.WALFsyncMicros = percentiles(fsyncs)
	mu.Unlock()
	rep.ErrorGatePass = rep.MaxRelError < ingestErrorGate
	if !rep.ErrorGatePass {
		return rep, fmt.Errorf("ingest: GH estimate error %.4f under churn breaches the %.0f%% gate",
			rep.MaxRelError, ingestErrorGate*100)
	}
	return rep, nil
}
