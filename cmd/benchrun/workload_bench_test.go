package main

import (
	"testing"

	"spatialsel/internal/rtree"
	"spatialsel/internal/sdb"
)

func BenchmarkWorkloadKernels(b *testing.B) {
	for i, w := range workloads {
		nl, nr := int(float64(w.nLeft)*0.1), int(float64(w.nRight)*0.1)
		c, _ := sdb.NewCatalogAtLevel(5)
		dl, dr := w.left(nl, int64(i+1)), w.right(nr, int64(i+1)+100)
		dl.Name, dr.Name = "l", "r"
		tl, err := c.Create(dl)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := c.Create(dr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.name+"/pointer", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rtree.JoinCount(tl.Index, tr.Index)
			}
		})
		b.Run(w.name+"/packed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rtree.PackedJoinCount(tl.Packed, tr.Packed)
			}
		})
	}
}
