package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatialsel/internal/datagen"
	"spatialsel/internal/server"
)

// OverloadReport compares the server under 2× its parallel capacity with the
// admission gate off (baseline) and on. The gate earns its keep when the
// admitted phase holds p99 near the unloaded latency and sheds the excess
// without giving up goodput.
type OverloadReport struct {
	// Concurrency is the number of closed-loop client goroutines — twice the
	// server's GOMAXPROCS capacity.
	Concurrency int   `json:"concurrency"`
	PhaseMillis int64 `json:"phase_millis"`
	// Baseline runs admission off: every arrival executes, latency dilates.
	Baseline OverloadPhase `json:"baseline"`
	// Admission runs the gate with MaxInflight pinned at capacity.
	Admission OverloadPhase `json:"admission"`
}

// OverloadPhase is one phase's outcome. AdmittedMicros covers only requests
// that returned 200 — shed requests fail fast by design and would make the
// percentiles meaningless.
type OverloadPhase struct {
	Requests       int         `json:"requests"`
	Shed           int         `json:"shed"`
	Errors         int         `json:"errors"`
	GoodputQPS     float64     `json:"goodput_qps"`
	ShedRate       float64     `json:"shed_rate"`
	AdmittedMicros Percentiles `json:"admitted_micros"`
}

// runOverload executes both phases against fresh servers with identical
// tables and workload.
func runOverload(scale float64, level int, phase time.Duration) (OverloadReport, error) {
	n := int(8000 * scale)
	if n < 50 {
		n = 50
	}
	capacity := runtime.GOMAXPROCS(0)
	// On a single-CPU host two clients barely overlap; floor the offered
	// concurrency so the limiter always sees genuine contention. (Like the
	// join-kernel speedup, the numbers are most meaningful on ≥ 4 cores.)
	conc := 2 * capacity
	if conc < 4 {
		conc = 4
	}
	rep := OverloadReport{Concurrency: conc, PhaseMillis: phase.Milliseconds()}

	var err error
	if rep.Baseline, err = overloadPhase(false, n, level, capacity, conc, phase); err != nil {
		return rep, err
	}
	if rep.Admission, err = overloadPhase(true, n, level, capacity, conc, phase); err != nil {
		return rep, err
	}
	return rep, nil
}

func overloadPhase(admission bool, n, level, capacity, conc int, phase time.Duration) (OverloadPhase, error) {
	cfg := server.Config{Level: level}
	if admission {
		cfg.Admission = true
		// Pin the concurrency limit at measured parallel capacity so the 2×
		// offered load has a clear excess for the gate to shed.
		cfg.MaxInflight = capacity
	}
	srv, err := server.New(cfg)
	if err != nil {
		return OverloadPhase{}, err
	}
	for i, name := range []string{"ol", "or"} {
		if _, _, err := srv.Store().Register(datagen.Uniform(name, n, 0.005, int64(i+1)), false); err != nil {
			return OverloadPhase{}, err
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// The default transport keeps only two idle connections per host; a 2×
	// capacity closed loop would spend its time in TCP churn instead of
	// queries. Size the pool to the client count so the offered load is real.
	tr := &http.Transport{MaxIdleConns: conc, MaxIdleConnsPerHost: conc}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	body := []byte(`{"tables":["ol","or"],"predicates":[["ol","or"]],"limit":1}`)
	var (
		okN, shedN, errN atomic.Int64
		latMu            sync.Mutex
		lat              []int64
	)
	stopAt := time.Now().Add(phase)
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				start := time.Now()
				resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errN.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				elapsed := time.Since(start).Microseconds()
				switch resp.StatusCode {
				case http.StatusOK:
					okN.Add(1)
					latMu.Lock()
					lat = append(lat, elapsed)
					latMu.Unlock()
				case http.StatusServiceUnavailable:
					shedN.Add(1)
					// A real client would honor Retry-After; a token pause
					// keeps the closed loop from busy-spinning on 503s.
					time.Sleep(200 * time.Microsecond)
				default:
					errN.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	total := okN.Load() + shedN.Load() + errN.Load()
	ph := OverloadPhase{
		Requests:       int(total),
		Shed:           int(shedN.Load()),
		Errors:         int(errN.Load()),
		GoodputQPS:     float64(okN.Load()) / phase.Seconds(),
		AdmittedMicros: percentiles(lat),
	}
	if total > 0 {
		ph.ShedRate = float64(shedN.Load()) / float64(total)
	}
	return ph, nil
}
