package main

import (
	"runtime"
	"testing"

	"spatialsel/internal/datagen"
	"spatialsel/internal/sdb"
)

func kernelTables(t *testing.T) (*sdb.Table, *sdb.Table) {
	t.Helper()
	c, err := sdb.NewCatalogAtLevel(5)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := c.Create(datagen.Uniform("l", 1500, 0.01, 1))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Create(datagen.Uniform("r", 1500, 0.01, 2))
	if err != nil {
		t.Fatal(err)
	}
	return tl, tr
}

// TestMeasureJoinKernelSingleWorker is the regression test for the committed
// "workers: 1, speedup: 1.59" snapshot: with a one-worker pool the parallel
// entry point falls back to the identical serial kernel, so the report must
// record the resolved worker count, omit the parallel timings and speedup
// entirely, and say why. The old runJoinKernel failed all three: it echoed
// the knob, timed the fallback as if it were a parallel run, and published
// the warm-up bias between the two loops as a speedup.
func TestMeasureJoinKernelSingleWorker(t *testing.T) {
	tl, tr := kernelTables(t)
	k, err := measureJoinKernel(tl, tr, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k.Workers != 1 {
		t.Errorf("Workers = %d, want resolved count 1", k.Workers)
	}
	if k.ParallelMicros != nil {
		t.Errorf("ParallelMicros present at one worker: %+v", *k.ParallelMicros)
	}
	if k.PackedParallelMicros != nil {
		t.Errorf("PackedParallelMicros present at one worker: %+v", *k.PackedParallelMicros)
	}
	if k.Speedup > 0 {
		t.Errorf("Speedup = %g published for a serial fallback", k.Speedup)
	}
	if k.ParallelNote == "" {
		t.Error("ParallelNote missing: the omission must be documented in the snapshot")
	}
	if !k.CountsMatch || k.Pairs <= 0 {
		t.Errorf("count gate: pairs=%d match=%v", k.Pairs, k.CountsMatch)
	}
	if !(k.PackedSpeedup > 0) {
		t.Errorf("PackedSpeedup = %g, want > 0 (packed kernel always measured)", k.PackedSpeedup)
	}
}

// TestMeasureJoinKernelMultiWorker: with a real pool the parallel timings and
// speedup appear and the note does not.
func TestMeasureJoinKernelMultiWorker(t *testing.T) {
	tl, tr := kernelTables(t)
	k, err := measureJoinKernel(tl, tr, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k.Workers != 2 {
		t.Errorf("Workers = %d, want 2", k.Workers)
	}
	if k.ParallelMicros == nil || k.PackedParallelMicros == nil {
		t.Fatal("parallel timings missing at two workers")
	}
	if !(k.Speedup > 0) {
		t.Errorf("Speedup = %g, want > 0", k.Speedup)
	}
	if k.ParallelNote != "" {
		t.Errorf("ParallelNote = %q, want empty when parallel timings are published", k.ParallelNote)
	}
}

// TestMeasureJoinKernelResolvesAuto: the auto knob (≤ 0) must be recorded as
// the GOMAXPROCS it resolves to, never as the raw 0.
func TestMeasureJoinKernelResolvesAuto(t *testing.T) {
	tl, tr := kernelTables(t)
	k, err := measureJoinKernel(tl, tr, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); k.Workers != want {
		t.Errorf("Workers = %d, want resolved GOMAXPROCS %d", k.Workers, want)
	}
	if k.Workers == 0 {
		t.Error("Workers recorded as the raw knob value 0")
	}
}
