package main

import (
	"fmt"
	"time"

	"spatialsel/internal/rtree"
	"spatialsel/internal/sdb"
)

// JoinKernelReport compares the R-tree join kernels on the workload's index
// pair — the raw pair enumeration, with no row materialization or filters, so
// the speedups isolate the filter phase. The run fails if any kernel
// disagrees on the pair count.
type JoinKernelReport struct {
	// Workers is the pool size the parallel phases actually ran with: the
	// -workers knob after the ≤0 → GOMAXPROCS mapping the kernels apply
	// themselves. Earlier snapshots recorded the raw knob here while the
	// kernels resolved it independently, which is how a "1-worker 1.59×
	// speedup" got committed.
	Workers      int         `json:"workers"`
	SerialMicros Percentiles `json:"serial_micros"`

	// ParallelMicros and Speedup are present only when Workers > 1. With one
	// worker the parallel entry point falls back to the identical serial
	// kernel, so a "speedup" would only measure run-to-run noise and cache
	// warm-up bias (the old sequential, warmup-free loop reported up to 1.59×
	// for it); ParallelNote documents the omission in the snapshot itself.
	ParallelMicros *Percentiles `json:"parallel_micros,omitempty"`
	Speedup        float64      `json:"speedup,omitempty"`
	ParallelNote   string       `json:"parallel_note,omitempty"`

	// PackedMicros times the packed SoA kernel serially; PackedSpeedup is
	// serial p50 over packed p50 — the layout win, independent of the pool.
	PackedMicros  Percentiles `json:"packed_micros"`
	PackedSpeedup float64     `json:"packed_speedup"`
	// PackedParallelMicros is present only when Workers > 1.
	PackedParallelMicros *Percentiles `json:"packed_parallel_micros,omitempty"`

	Pairs       int  `json:"pairs"`
	CountsMatch bool `json:"counts_match"`
}

// measureJoinKernel times the pointer and packed join kernels on the same
// index pair and verifies they agree on the exact pair count — the
// correctness gate that makes the speedup numbers trustworthy.
//
// Two measurement rules fix the old runJoinKernel's bias: every kernel gets
// one untimed warm-up run before the clock starts (the old code timed the
// serial kernel first and cold, gifting the later kernels its cache
// footprint), and the timed iterations interleave the kernels round-robin so
// slow drift (thermal, noisy neighbors) hits all of them equally.
func measureJoinKernel(a, b *sdb.Table, workers, iters int) (JoinKernelReport, error) {
	resolved := rtree.ResolveJoinWorkers(workers)
	pa, pb := a.Packed, b.Packed
	if pa == nil {
		pa = rtree.Pack(a.Index)
	}
	if pb == nil {
		pb = rtree.Pack(b.Index)
	}

	type kernel struct {
		name  string
		run   func() int
		times []int64
		pairs int
	}
	kernels := []*kernel{
		{name: "serial", run: func() int { return rtree.JoinCount(a.Index, b.Index) }},
		{name: "packed", run: func() int { return rtree.PackedJoinCount(pa, pb) }},
	}
	if resolved > 1 {
		kernels = append(kernels,
			&kernel{name: "parallel", run: func() int { return rtree.JoinCountParallel(a.Index, b.Index, resolved) }},
			&kernel{name: "packed_parallel", run: func() int { return rtree.PackedJoinCountParallel(pa, pb, resolved) }},
		)
	}

	for _, k := range kernels {
		k.pairs = k.run() // warm-up, untimed; also the count each kernel must agree on
	}
	for i := 0; i < iters; i++ {
		for _, k := range kernels {
			start := time.Now()
			n := k.run()
			k.times = append(k.times, time.Since(start).Microseconds())
			if n != k.pairs {
				return JoinKernelReport{}, fmt.Errorf("%s kernel unstable: %d pairs, then %d", k.name, k.pairs, n)
			}
		}
	}

	rep := JoinKernelReport{
		Workers:      resolved,
		SerialMicros: percentiles(kernels[0].times),
		PackedMicros: percentiles(kernels[1].times),
		Pairs:        kernels[0].pairs,
		CountsMatch:  true,
	}
	for _, k := range kernels[1:] {
		if k.pairs != rep.Pairs {
			rep.CountsMatch = false
			return rep, fmt.Errorf("%s kernel counted %d pairs, serial %d", k.name, k.pairs, rep.Pairs)
		}
	}
	if p := rep.PackedMicros.P50; p > 0 {
		rep.PackedSpeedup = float64(rep.SerialMicros.P50) / float64(p)
	}
	if resolved > 1 {
		par := percentiles(kernels[2].times)
		rep.ParallelMicros = &par
		if p := par.P50; p > 0 {
			rep.Speedup = float64(rep.SerialMicros.P50) / float64(p)
		}
		ppar := percentiles(kernels[3].times)
		rep.PackedParallelMicros = &ppar
	} else {
		rep.ParallelNote = "single-worker pool falls back to the serial kernel; parallel timings omitted"
	}
	return rep, nil
}
