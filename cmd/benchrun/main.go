// Command benchrun executes a fixed estimator/join workload and writes a
// machine-readable BENCH_<date>.json snapshot: per-method estimation accuracy
// and latency percentiles, join execution latency, and the engine's obs
// counters. Committing one snapshot per perf-relevant PR makes the repo's
// performance trajectory diffable.
//
//	$ go run ./cmd/benchrun -scale 0.2 -out .
//	$ cat BENCH_2026-08-05.json | jq .methods.gh
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"spatialsel/internal/core"
	"spatialsel/internal/datagen"
	"spatialsel/internal/dataset"
	"spatialsel/internal/histogram"
	"spatialsel/internal/obs"
	"spatialsel/internal/rtree"
	"spatialsel/internal/sample"
	"spatialsel/internal/sdb"
)

// Report is the top-level JSON document.
type Report struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	GitCommit  string             `json:"git_commit,omitempty"` // short HEAD, "" outside a repo
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Scale      float64            `json:"scale"`
	Level      int                `json:"level"`
	Iters      int                `json:"iters"`
	Workloads  []WorkloadReport   `json:"workloads"`
	Ingest     *IngestReport      `json:"ingest,omitempty"`
	Overload   *OverloadReport    `json:"overload,omitempty"`
	Counters   map[string]float64 `json:"counters"`
}

// WorkloadReport covers one dataset pair: the executed join truth, its
// latency, and every estimation method measured against it.
type WorkloadReport struct {
	Name        string                  `json:"name"`
	LeftItems   int                     `json:"left_items"`
	RightItems  int                     `json:"right_items"`
	ActualPairs int                     `json:"actual_pairs"`
	JoinMicros  Percentiles             `json:"join_micros"`
	JoinKernel  JoinKernelReport        `json:"join_kernel"`
	Methods     map[string]MethodReport `json:"methods"`
}

// MethodReport is one estimator's accuracy and cost on one workload.
type MethodReport struct {
	Estimate  float64     `json:"estimate"`
	RelError  float64     `json:"rel_error"`
	EstMicros Percentiles `json:"estimate_micros"`
}

// Percentiles summarizes a latency sample in microseconds.
type Percentiles struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

func percentiles(us []int64) Percentiles {
	if len(us) == 0 {
		return Percentiles{}
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(us)-1))
		return us[i]
	}
	return Percentiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: us[len(us)-1]}
}

// workload is one fixed dataset pair; n values are pre-scale cardinalities.
type workload struct {
	name          string
	left, right   func(n int, seed int64) *dataset.Dataset
	nLeft, nRight int
}

var workloads = []workload{
	{
		name: "uniform-uniform",
		left: func(n int, seed int64) *dataset.Dataset {
			return datagen.Uniform("u1", n, 0.005, seed)
		},
		right: func(n int, seed int64) *dataset.Dataset {
			return datagen.Uniform("u2", n, 0.005, seed)
		},
		nLeft: 20000, nRight: 20000,
	},
	{
		name: "polyline-polyline",
		left: func(n int, seed int64) *dataset.Dataset {
			return datagen.PolylineTrace("p1", n, 50, 0.004, seed)
		},
		right: func(n int, seed int64) *dataset.Dataset {
			return datagen.PolylineTrace("p2", n, 50, 0.004, seed)
		},
		nLeft: 20000, nRight: 6000,
	},
	{
		name: "cluster-uniform",
		left: func(n int, seed int64) *dataset.Dataset {
			return datagen.Cluster("c1", n, 0.4, 0.6, 0.1, 0.005, seed)
		},
		right: func(n int, seed int64) *dataset.Dataset {
			return datagen.Uniform("u3", n, 0.005, seed)
		},
		nLeft: 15000, nRight: 15000,
	},
}

var methods = []string{"gh", "basicgh", "ph", "rs", "rswr", "ss"}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

// gitCommit stamps the snapshot with the working tree's short HEAD so the
// bench trajectory is attributable across PRs. Best-effort: outside a git
// checkout (or without git on PATH) it returns "".
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.2, "dataset cardinality multiplier")
	level := fs.Int("level", sdb.StatisticsLevel, "GH statistics level")
	iters := fs.Int("iters", 9, "timed repetitions per measurement")
	fraction := fs.Float64("fraction", 0.1, "sampling fraction for rs/rswr/ss")
	workers := fs.Int("workers", 0, "parallel join pool size (0 = GOMAXPROCS)")
	overload := fs.Bool("overload", true, "run the 2x-capacity overload scenario (admission gate on vs off)")
	overloadMS := fs.Int("overload-ms", 1200, "overload scenario phase duration in milliseconds")
	outDir := fs.String("out", ".", "directory for BENCH_<date>.json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Resolve the knob exactly the way the join kernels do, so the snapshot's
	// workers field records the pool size measurements actually used.
	*workers = rtree.ResolveJoinWorkers(*workers)

	before := obs.Default.Snapshot()
	rep := Report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GitCommit:  gitCommit(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Scale:      *scale,
		Level:      *level,
		Iters:      *iters,
	}

	for i, w := range workloads {
		wr, err := runWorkload(w, *scale, *level, *iters, *fraction, *workers, int64(i+1))
		if err != nil {
			return fmt.Errorf("workload %s: %w", w.name, err)
		}
		rep.Workloads = append(rep.Workloads, wr)
		fmt.Fprintf(os.Stderr, "%-20s actual=%d join_p50=%dµs gh_err=%.3f packed=%.2fx workers=%d\n",
			w.name, wr.ActualPairs, wr.JoinMicros.P50, wr.Methods["gh"].RelError,
			wr.JoinKernel.PackedSpeedup, wr.JoinKernel.Workers)
	}

	// Mixed read/write workload: throughput, WAL fsync latency, and the
	// GH-accuracy-under-churn gate (the run fails if maintained statistics
	// drift past 5% relative error).
	ing, err := runIngest(*scale, *level, 42)
	if err != nil {
		return fmt.Errorf("ingest workload: %w", err)
	}
	rep.Ingest = &ing
	fmt.Fprintf(os.Stderr, "%-20s records/s=%.0f fsync_p99=%dµs max_err=%.4f repacks=%d\n",
		"ingest-churn", ing.RecordsPerSec, ing.WALFsyncMicros.P99, ing.MaxRelError, ing.Repacks)

	// Overload: the admission gate against 2× capacity, versus a gate-less
	// baseline on the same workload.
	if *overload {
		ol, err := runOverload(*scale, *level, time.Duration(*overloadMS)*time.Millisecond)
		if err != nil {
			return fmt.Errorf("overload workload: %w", err)
		}
		rep.Overload = &ol
		fmt.Fprintf(os.Stderr, "%-20s goodput=%.0f/s shed=%.1f%% admitted_p99=%dµs baseline_p99=%dµs\n",
			"overload-2x", ol.Admission.GoodputQPS, 100*ol.Admission.ShedRate,
			ol.Admission.AdmittedMicros.P99, ol.Baseline.AdmittedMicros.P99)
	}

	// Counter deltas attribute the whole run's engine work (node visits,
	// cells touched, sample draws) to this snapshot.
	rep.Counters = map[string]float64{}
	for name, v := range obs.Default.Snapshot() {
		//lint:ignore floateq a counter the run never touched has a bit-identical snapshot; exact zero is the intended filter
		if d := v - before[name]; d != 0 {
			rep.Counters[name] = d
		}
	}

	path := filepath.Join(*outDir, "BENCH_"+rep.Date+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println(path)
	return nil
}

func runWorkload(w workload, scale float64, level, iters int, fraction float64, workers int, seed int64) (WorkloadReport, error) {
	nl, nr := int(float64(w.nLeft)*scale), int(float64(w.nRight)*scale)
	if nl < 10 || nr < 10 {
		return WorkloadReport{}, fmt.Errorf("scale %g leaves too few items (%d, %d)", scale, nl, nr)
	}
	c, err := sdb.NewCatalogAtLevel(level)
	if err != nil {
		return WorkloadReport{}, err
	}
	dl, dr := w.left(nl, seed), w.right(nr, seed+100)
	dl.Name, dr.Name = "l", "r"
	tl, err := c.Create(dl)
	if err != nil {
		return WorkloadReport{}, err
	}
	tr, err := c.Create(dr)
	if err != nil {
		return WorkloadReport{}, err
	}

	plan, err := c.Plan(sdb.Query{
		Tables:     []string{"l", "r"},
		Predicates: []sdb.Predicate{{Left: "l", Right: "r"}},
	})
	if err != nil {
		return WorkloadReport{}, err
	}

	wr := WorkloadReport{
		Name:      w.name,
		LeftItems: tl.Len(), RightItems: tr.Len(),
		Methods: make(map[string]MethodReport, len(methods)),
	}

	joinTimes := make([]int64, 0, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		res, err := plan.ExecuteContext(context.Background())
		if err != nil {
			return WorkloadReport{}, err
		}
		joinTimes = append(joinTimes, time.Since(start).Microseconds())
		wr.ActualPairs = res.Len()
	}
	wr.JoinMicros = percentiles(joinTimes)

	kernel, err := measureJoinKernel(tl, tr, workers, iters)
	if err != nil {
		return WorkloadReport{}, err
	}
	wr.JoinKernel = kernel

	for _, m := range methods {
		mr, err := runMethod(m, tl, tr, level, iters, fraction, float64(wr.ActualPairs))
		if err != nil {
			return WorkloadReport{}, err
		}
		wr.Methods[m] = mr
	}
	return wr, nil
}

// runMethod times build+estimate end to end — for sampling estimators the
// sample draw is the dominant cost and must be inside the clock, matching how
// the paper accounts estimation cost.
func runMethod(m string, a, b *sdb.Table, level, iters int, fraction float64, actual float64) (MethodReport, error) {
	times := make([]int64, 0, iters)
	var est core.Estimate
	for i := 0; i < iters; i++ {
		start := time.Now()
		var err error
		est, err = estimateOnce(m, a, b, level, fraction)
		if err != nil {
			return MethodReport{}, err
		}
		times = append(times, time.Since(start).Microseconds())
	}
	denom := actual
	if denom <= 0 {
		denom = 1
	}
	rel := (est.PairCount - actual) / denom
	if rel < 0 {
		rel = -rel
	}
	return MethodReport{Estimate: est.PairCount, RelError: rel, EstMicros: percentiles(times)}, nil
}

func estimateOnce(m string, a, b *sdb.Table, level int, fraction float64) (core.Estimate, error) {
	switch m {
	case "gh":
		t, err := histogram.NewGH(level)
		if err != nil {
			return core.Estimate{}, err
		}
		// GH estimates straight off the catalog's precomputed statistics —
		// the paper's point is that this path touches no base data.
		return t.Estimate(a.Stats, b.Stats)
	case "basicgh":
		t, err := histogram.NewBasicGH(level)
		if err != nil {
			return core.Estimate{}, err
		}
		return buildAndEstimate(t, a, b)
	case "ph":
		t, err := histogram.NewPH(level)
		if err != nil {
			return core.Estimate{}, err
		}
		return buildAndEstimate(t, a, b)
	case "rs", "rswr", "ss":
		kind := map[string]sample.Method{"rs": sample.RS, "rswr": sample.RSWR, "ss": sample.SS}[m]
		t, err := sample.New(kind, fraction, sample.WithSeed(1))
		if err != nil {
			return core.Estimate{}, err
		}
		return buildAndEstimate(t, a, b)
	}
	return core.Estimate{}, fmt.Errorf("unknown method %q", m)
}

func buildAndEstimate(t core.Technique, a, b *sdb.Table) (core.Estimate, error) {
	sa, err := t.Build(a.Data)
	if err != nil {
		return core.Estimate{}, err
	}
	sb, err := t.Build(b.Data)
	if err != nil {
		return core.Estimate{}, err
	}
	return t.Estimate(sa, sb)
}
