// Package spatialsel reproduces "Selectivity Estimation for Spatial Joins"
// (An, Yang, Sivasubramaniam; ICDE 2001) as a complete Go library: the
// paper's sampling and histogram estimators (including the Geometric
// Histogram), every substrate its evaluation depends on (R-tree with bulk
// loading and synchronized-traversal join, plane-sweep and partition joins,
// Hilbert curve, dataset generators), harnesses regenerating each figure of
// the evaluation, and the extensions its future-work section calls for
// (range-query estimation, distance-join power laws, I/O cost models, a
// mini spatial DBMS with a cost-based planner, and the exact-geometry
// refinement step).
//
// The implementation lives under internal/; see README.md for the map,
// DESIGN.md for the experiment inventory, and EXPERIMENTS.md for
// measured-vs-paper results. This root package holds the top-level
// integration tests and the benchmark suite (one benchmark per figure
// panel; see bench_test.go).
package spatialsel
