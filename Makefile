GO ?= go

.PHONY: all ci check build test race race-all chaos vet lint cover bench microbench experiments examples clean

all: check

# Default verification path: compile everything, lint (go vet + sdbvet +
# gofmt), run the full test suite, then race-check the concurrent packages
# (the HTTP server and the mini-DBMS it serves).
check: build lint test race

# CI entry point: everything a merge must pass in one target — the default
# verification path (build, lint, tests, scoped -race) plus the short
# fault-injection chaos suite.
ci: check chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency — the HTTP service layer,
# the WAL-backed ingest path, the catalog/executor underneath it, the
# parallel join kernels, the shared
# metric/span registry — plus the read-mostly data structures they share
# across goroutines (geometry, curves, datasets, samples).
race:
	$(GO) test -race ./internal/server/... ./internal/ingest/... ./internal/resilience/... ./internal/faultfs/... ./internal/telemetry/... ./internal/sdb/... ./internal/obs/... ./internal/rtree/... ./internal/partjoin/... ./internal/histogram/... ./internal/geom/... ./internal/hilbert/... ./internal/dataset/... ./internal/sample/...

race-all:
	$(GO) test -race ./...

# Fault-injection suite under the race detector: mixed query+ingest traffic
# over a faulty filesystem (fsync failures, torn writes, ENOSPC), the WAL
# failure-path tests, degraded read-only mode, and the HTTP-level admission
# and degraded-mode contracts.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Degraded|Admission|WAL' ./internal/ingest/... ./internal/faultfs/... ./internal/resilience/... ./internal/server/...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sdbvet -stale-ignores ./...

# Full lint gate: stock go vet, the project's own analyzer suite (sdbvet:
# ctxpoll, atomicfield, maporder, metriclabel, floateq syntactically, plus
# the flow-sensitive lockorder, unlockpath, fsyncorder, publishmut on
# internal/lint/cfg), and a gofmt check that fails on any unformatted file.
# -stale-ignores makes a //lint:ignore that no longer suppresses anything a
# finding too, so dead suppressions cannot accumulate. Deliberate violations
# are annotated in source with //lint:ignore <analyzer> <reason>.
lint: build
	$(GO) vet ./...
	$(GO) run ./cmd/sdbvet -stale-ignores ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then echo "gofmt: unformatted files:"; echo "$$fmtout"; exit 1; fi

cover:
	$(GO) test -coverprofile=cover.out ./internal/... ./cmd/...
	$(GO) tool cover -func=cover.out | tail -1

# Machine-readable perf snapshot: runs the fixed estimator/join workload and
# writes BENCH_<date>.json (latency percentiles, accuracy, serial-vs-parallel
# join kernel comparison with a count-equality gate, engine counters).
bench:
	$(GO) run ./cmd/benchrun -scale 0.1 -out .

# One Go benchmark per paper figure panel plus ablations and extensions.
# SPATIALSEL_BENCH_SCALE (default 0.02) scales dataset cardinalities.
microbench:
	$(GO) test -bench . -benchmem ./...

# Regenerate the paper's evaluation tables at a tenth of its cardinalities.
experiments:
	$(GO) run ./cmd/experiments -fig all -scale 0.1 -level 9

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/queryplanner
	$(GO) run ./examples/approxcount
	$(GO) run ./examples/correlation
	$(GO) run ./examples/maintenance
	$(GO) run ./examples/distancejoin
	$(GO) run ./examples/minidb
	$(GO) run ./examples/twostep

clean:
	rm -f cover.out test_output.txt bench_output.txt
