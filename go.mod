module spatialsel

go 1.22
